"""``python -m repro.obs`` — summarise, validate or convert a JSONL trace.

Usage::

    python -m repro.obs trace.jsonl              # human summary
    python -m repro.obs trace.jsonl --top 25     # more spans in the table
    python -m repro.obs trace.jsonl --validate   # schema check (CI leg)
    python -m repro.obs trace.jsonl --chrome out.json   # flame-chart export

The summary shows the top spans by accumulated *self* time, counter and
gauge rollups, the dynamic-reordering timeline (every ``bdd.reorder``
event with its before/after node counts) and, when the trace contains a
round-by-round construction, the per-round frontier table.
"""

import argparse
import json
import sys

from repro.obs.schema import validate_trace_file
from repro.obs.sinks import AggregateSink, chrome_trace


def _load(path):
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _fmt_ms(seconds):
    return f"{seconds * 1000:10.3f}"


def summarise(records, top=15, out=None):
    """Print the human summary of a record stream."""
    if out is None:
        out = sys.stdout
    aggregate = AggregateSink()
    for record in records:
        aggregate.emit(record)
    kinds = {}
    for record in records:
        kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
    end = max((r["ts"] + r.get("dur", 0.0) for r in records), default=0.0)
    counts = ", ".join(f"{count} {kind}s" for kind, count in sorted(kinds.items()))
    print(f"{len(records)} records ({counts}); trace ends at {end:.3f}s", file=out)

    if aggregate.spans:
        print(f"\ntop spans by self time (of {len(aggregate.spans)}):", file=out)
        print(f"  {'span':<38} {'count':>7} {'self ms':>10} {'total ms':>10} {'max ms':>10}", file=out)
        ranked = sorted(aggregate.spans.items(), key=lambda item: -item[1]["self"])
        for name, stats in ranked[:top]:
            print(
                f"  {name:<38} {stats['count']:>7}"
                f" {_fmt_ms(stats['self'])} {_fmt_ms(stats['total'])} {_fmt_ms(stats['max'])}",
                file=out,
            )

    if aggregate.counters:
        print("\ncounters:", file=out)
        for name, value in sorted(aggregate.counters.items()):
            print(f"  {name:<46} {value:>14}", file=out)

    if aggregate.gauges:
        print("\ngauges (last / max):", file=out)
        for name, stats in sorted(aggregate.gauges.items()):
            print(f"  {name:<46} {stats['last']:>14} / {stats['max']}", file=out)

    reorders = [
        r for r in records if r["kind"] == "event" and r["name"] == "bdd.reorder"
    ]
    if reorders:
        print("\nreorder timeline:", file=out)
        for record in reorders:
            attrs = record.get("attrs", {})
            print(
                f"  t={record['ts']:.3f}s  {attrs.get('before', '?'):>8} -> "
                f"{attrs.get('after', '?'):<8} live nodes"
                f"  ({attrs.get('swaps', '?')} swaps, trigger {attrs.get('trigger', '?')})",
                file=out,
            )

    rounds = [
        r for r in records if r["kind"] == "event" and r["name"] == "construct.round"
    ]
    if rounds:
        print("\nconstruction rounds:", file=out)
        print(f"  {'round':>5} {'frontier':>12} {'states':>14} {'hit rate':>9}", file=out)
        for record in rounds:
            attrs = record.get("attrs", {})
            rate = attrs.get("cache_hit_rate")
            print(
                f"  {attrs.get('round', '?'):>5} {attrs.get('frontier', '?'):>12}"
                f" {attrs.get('states', '?'):>14}"
                f" {rate if rate is not None else '-':>9}",
                file=out,
            )

    errors = [r for r in records if r["kind"] == "span" and "error" in r]
    if errors:
        print(f"\n{len(errors)} span(s) closed by an exception:", file=out)
        for record in errors[:top]:
            print(f"  {record['name']}: {record['error']}", file=out)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.splitlines()[0]
    )
    parser.add_argument("trace", help="JSONL trace file (as written by REPRO_TRACE)")
    parser.add_argument("--top", type=int, default=15, help="rows in the span table")
    parser.add_argument(
        "--validate",
        action="store_true",
        help="schema-check every record and exit (non-zero on a violation)",
    )
    parser.add_argument(
        "--chrome",
        metavar="OUT",
        default=None,
        help="write a Chrome trace_event JSON conversion to OUT",
    )
    args = parser.parse_args(argv)

    if args.validate:
        try:
            records = validate_trace_file(args.trace)
        except ValueError as error:
            print(f"{args.trace}: INVALID — {error}", file=sys.stderr)
            return 1
        print(f"{args.trace}: {len(records)} records, schema OK")
        return 0

    records = _load(args.trace)
    if args.chrome is not None:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(chrome_trace(records), handle)
        print(f"wrote {args.chrome} ({len(records)} records)")
        return 0

    summarise(records, top=args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
