"""Enumeration-free interpretation of knowledge-based programs.

Both interpretation procedures of :mod:`repro.interpretation.iteration` have
symbolic twins here, reached transparently through the ``is_symbolic_model``
dispatch of their explicit namesakes:

:func:`construct_by_rounds_symbolic`
    the depth-stratified construction, every set a BDD (below);
:func:`iterate_interpretation_symbolic`
    the non-monotone functional iteration ``P_{k+1} = Pg^{I_rep(P_k)}``,
    with protocols as per-agent ``action -> class BDD`` maps, reachability
    as relational images, and fixed-point/cycle detection on canonical BDD
    node ids instead of enumerated protocol tables.

:func:`construct_by_rounds_symbolic` is the symbolic twin of
:func:`repro.interpretation.iteration.construct_by_rounds`: the same
depth-stratified construction — guards of newly discovered local states are
evaluated over all states discovered so far, decisions are frozen on first
appearance, the frontier advances through the protocol-restricted
transitions — but every set in the loop is a BDD of a
:class:`repro.symbolic.model.SymbolicContextModel`:

* the *view* of each round is a
  :class:`~repro.symbolic.model.SymbolicStateSetView` over the accumulated
  reachable-set BDD, so guard extensions are computed by the ``"bdd"``
  backend's relational products (batched through the shared evaluator);
* the *per-local-state decision loop* of the explicit construction becomes
  one :meth:`~repro.symbolic.model.SymbolicGuardTable.enabled_sets` call
  per agent per round: guard uniformity over a whole set of
  indistinguishability classes is two projections per guard, and the frozen
  protocol is a map ``action -> class BDD`` per agent;
* the *frontier expansion* is one relational image through the compiled
  transition relation (:meth:`SymbolicContextModel.successors`).

Nothing enumerates: a round costs BDD operations whose size tracks the
diagrams, not ``∏|domain|``, which is what lets the construction run on
contexts whose state space the explicit engines cannot even iterate (muddy
children at 20 participants has ``≈ 5·10^14`` states; its reachable-set and
protocol BDDs have a few thousand nodes).

The a-posteriori verification mirrors the explicit path's
``check_implementation``: the frozen per-round decisions are recomputed
against the *final* system and compared — equality on every decided class
is exactly the fixed-point property ``P = Pg^{I_rep(P)}`` on reachable
local states (and the generated system trivially agrees, being built from
the same frozen protocol).
"""

from repro.interpretation.functional import guard_table
from repro.interpretation.iteration import IterationResult, _fallback_set
from repro.symbolic.bdd import FALSE, TRUE
from repro.systems.actions import NOOP_NAME
from repro.systems.protocols import JointProtocol, Protocol
from repro.util.errors import InterpretationError, ModelError, ProgramError

__all__ = [
    "construct_by_rounds_symbolic",
    "iterate_interpretation_symbolic",
    "SymbolicSystem",
]


def construct_by_rounds_symbolic(
    program,
    model,
    max_rounds=1000,
    require_local=True,
    verify=True,
):
    """Depth-stratified construction over a symbolic context model.

    Returns an :class:`~repro.interpretation.iteration.IterationResult`
    whose ``system`` is a :class:`SymbolicSystem` (reachable set as a BDD,
    knowledge queries through the symbolic evaluator) and whose
    ``protocol`` is a callable-backed joint protocol evaluating the frozen
    class BDDs at any concrete local state.
    """
    for agent in program.agents:
        program.program(agent)  # validate agents exist in the program

    bdd = model.encoding.bdd
    seen = model.initial
    frontier = model.initial
    decided = {agent: FALSE for agent in model.agents}
    selection = {agent: {} for agent in model.agents}

    rounds = 0
    while frontier != FALSE and rounds < max_rounds:
        rounds += 1
        if bdd.reorder_pending:
            # Round boundaries are the construction's precise safe points:
            # everything the loop holds is enumerable here, so a pending
            # sift can collect unreachable junk as well.
            in_flight = [seen, frontier]
            in_flight += decided.values()
            for agent_selection in selection.values():
                in_flight += agent_selection.values()
            model.maybe_reorder(in_flight)
        view = model.view(seen)
        # One symbolic guard table per round's view: all clause guards are
        # evaluated over the accumulated states in one batched engine pass,
        # and each agent's newly appearing classes are decided at once.
        table = guard_table(view, program)
        for agent in model.agents:
            new_classes = bdd.diff(view.project(agent, frontier), decided[agent])
            if new_classes == FALSE:
                continue
            enabled = table.enabled_sets(agent, new_classes, require_local=require_local)
            agent_selection = selection[agent]
            for action, classes in enabled.items():
                agent_selection[action] = bdd.or_(
                    agent_selection.get(action, FALSE), classes
                )
            decided[agent] = bdd.or_(decided[agent], new_classes)
        targets = model.successors(frontier, selection)
        frontier = bdd.diff(targets, seen)
        seen = bdd.or_(seen, frontier)

    if frontier != FALSE:
        raise InterpretationError(
            f"round-by-round construction did not close within {max_rounds} rounds"
        )

    verified = None
    if verify:
        verified = _verify_fixed_point(
            program, model, seen, decided, selection, require_local
        )
    protocol = _materialise_protocol(program, model, selection, decided)
    system = SymbolicSystem(model, seen, rounds, selection=selection)
    return IterationResult(
        converged=bool(verified) if verify else True,
        protocol=protocol,
        system=system,
        iterations=rounds,
        verified=verified,
    )


def iterate_interpretation_symbolic(
    program,
    model,
    seed="liberal",
    max_iterations=100,
    require_local=True,
):
    """Iterate ``P_{k+1} = Pg^{I_rep(P_k)}`` entirely on BDDs.

    The symbolic twin of
    :func:`repro.interpretation.iteration.iterate_interpretation`: a protocol
    iterate is a per-agent map ``action -> class BDD``, representing it is a
    relational-image reachability sweep (:func:`_reach`), and deriving the
    next protocol is one :meth:`SymbolicGuardTable.enabled_sets` call per
    agent over the occupied local-state classes.  Fixed-point detection
    compares *selection signatures* — per agent, the sorted ``(action,
    node id)`` pairs of each action's class BDD restricted to the occupied
    classes; canonicity makes node-id equality exactly behavioural equality
    on the arising local states, so the test matches the explicit path's
    ``_protocol_signature`` without enumerating a single local state.

    Cycle detection keys on the reachable-set node alone: the derived
    protocol is a deterministic function of the reachable set (guards are
    evaluated over its view), and the next reachable set is a deterministic
    function of the derived protocol — so a repeated state-set node means
    the iteration has entered a cycle, mirroring the explicit
    ``system_signature`` argument.

    ``seed`` is ``"liberal"`` (all program-mentioned actions everywhere),
    ``"restrictive"`` (the fallback action everywhere), or a joint protocol
    previously materialised by the symbolic path (it carries its class BDDs
    as ``selection_nodes``).  There is no ``max_states``: nothing here
    materialises states.
    """
    for agent in program.agents:
        program.program(agent)  # validate agents exist in the program

    bdd = model.encoding.bdd
    current = _seed_selection(program, model, seed)

    seen_states = {}
    history = []
    for iteration in range(max_iterations):
        if bdd.reorder_pending:
            # Iteration boundaries are precise safe points: the loop holds
            # only the current selection, the memoised state-set views
            # (rooted by the model) and the signature nodes in ``history``.
            in_flight = []
            for agent_selection in current.values():
                in_flight += agent_selection.values()
            for signature in history:
                for _agent, entries in signature:
                    in_flight += [node for _action, node in entries]
            model.maybe_reorder(in_flight)
        states, rounds, current = _reach(program, model, current)
        view = model.view(states)
        occupied = {agent: view.project(agent, states) for agent in model.agents}
        current_signature = _selection_signature(model, current, occupied)
        history.append(current_signature)
        table = guard_table(view, program)
        derived = {
            agent: table.enabled_sets(agent, occupied[agent], require_local=require_local)
            for agent in model.agents
        }
        derived_signature = _selection_signature(model, derived, occupied)
        if derived_signature == current_signature:
            # The derived protocol agrees with the current one on every
            # occupied class, hence generates the same system: a fixed point
            # (an implementation) has been found.
            protocol = _materialise_protocol(
                program, model, derived, _decided_union(model, derived)
            )
            system = SymbolicSystem(model, states, rounds, selection=derived)
            return IterationResult(
                converged=True,
                protocol=protocol,
                system=system,
                iterations=iteration + 1,
                history=history,
            )
        if states in seen_states:
            cycle_length = iteration - seen_states[states]
            final_states, final_rounds, final_selection = _reach(program, model, derived)
            protocol = _materialise_protocol(
                program, model, final_selection, _decided_union(model, final_selection)
            )
            system = SymbolicSystem(
                model, final_states, final_rounds, selection=final_selection
            )
            return IterationResult(
                converged=False,
                protocol=protocol,
                system=system,
                iterations=iteration + 1,
                cycle_length=cycle_length,
                history=history,
            )
        seen_states[states] = iteration
        current = derived
    raise InterpretationError(
        f"interpretation of {model.name!r} did not stabilise within {max_iterations} iterations"
    )


def _seed_selection(program, model, seed):
    """The per-agent ``action -> class BDD`` map of a seed protocol."""
    if seed == "liberal":
        selection = {}
        for agent in model.agents:
            try:
                actions = frozenset(program.program(agent).actions())
            except ProgramError:
                actions = frozenset({NOOP_NAME})
            if not actions:
                actions = frozenset({NOOP_NAME})
            selection[agent] = {action: TRUE for action in actions}
        return selection
    if seed == "restrictive":
        return {
            agent: {action: TRUE for action in _fallback_set(program, agent)}
            for agent in model.agents
        }
    nodes = getattr(seed, "selection_nodes", None)
    if nodes is not None:
        return {
            agent: dict(nodes.get(agent, ())) for agent in model.agents
        }
    raise InterpretationError(
        f"unknown seed {seed!r}: the symbolic iteration accepts 'liberal', "
        f"'restrictive', or a joint protocol materialised by the symbolic path"
    )


def _reach(program, model, selection):
    """The reachable set under ``selection``, as a BFS of relational images.

    Classes no selected action covers — they appear when a derived protocol
    (decided only on the *previous* system's occupied classes) reaches new
    territory — are assigned the agent's fallback action on first contact,
    the symbolic counterpart of the explicit ``fallback_on_unknown``
    convention.  Returns ``(states, rounds, selection)`` where ``selection``
    is the (possibly augmented) copy actually used.
    """
    bdd = model.encoding.bdd
    selection = {
        agent: dict(agent_selection) for agent, agent_selection in selection.items()
    }
    covered = {}
    for agent, agent_selection in selection.items():
        node = FALSE
        for classes in agent_selection.values():
            node = bdd.or_(node, classes)
        covered[agent] = node
    seen = model.initial
    frontier = model.initial
    rounds = 0
    while frontier != FALSE:
        rounds += 1
        for agent in model.agents:
            projected = _project(model, agent, frontier)
            uncovered = bdd.diff(projected, covered[agent])
            if uncovered == FALSE:
                continue
            agent_selection = selection[agent]
            for action in _fallback_set(program, agent):
                agent_selection[action] = bdd.or_(
                    agent_selection.get(action, FALSE), uncovered
                )
            covered[agent] = bdd.or_(covered[agent], uncovered)
        targets = model.successors(frontier, selection)
        frontier = bdd.diff(targets, seen)
        seen = bdd.or_(seen, frontier)
    return seen, rounds, selection


def _project(model, agent, node):
    """Project a state-set BDD onto ``agent``'s observable variables."""
    levels = model.non_observable_levels(agent)
    if not levels:
        return node
    return model.encoding.bdd.exists(node, levels)


def _selection_signature(model, selection, occupied):
    """The canonical behaviour of ``selection`` on the ``occupied`` classes:
    per agent, the sorted ``(action, class-BDD id)`` pairs after restriction
    to the occupied classes (empty restrictions dropped).  Node-id equality
    of two signatures is exactly behavioural equality of the protocols on
    the local states arising from the same state set."""
    bdd = model.encoding.bdd
    signature = []
    for agent in model.agents:
        entries = []
        for action, classes in selection.get(agent, {}).items():
            node = bdd.and_(classes, occupied[agent])
            if node != FALSE:
                entries.append((str(action), node))
        signature.append((agent, tuple(sorted(entries))))
    return tuple(signature)


def _decided_union(model, selection):
    """The per-agent union of a selection's class BDDs — the classes on
    which the materialised protocol answers from the table rather than the
    fallback."""
    bdd = model.encoding.bdd
    decided = {}
    for agent in model.agents:
        node = FALSE
        for classes in selection.get(agent, {}).values():
            node = bdd.or_(node, classes)
        decided[agent] = node
    return decided


def _verify_fixed_point(program, model, seen, decided, selection, require_local):
    """Recompute every decided class's clause selection against the final
    system and compare with the frozen decisions — the implementation
    fixed-point test, per class instead of per local state."""
    view = model.view(seen)
    table = guard_table(view, program)
    bdd = model.encoding.bdd
    for agent in model.agents:
        try:
            final = table.enabled_sets(agent, decided[agent], require_local=require_local)
        except InterpretationError:
            return False
        frozen = selection[agent]
        for action in set(final) | set(frozen):
            if final.get(action, FALSE) != frozen.get(action, FALSE):
                return False
    return True


def _materialise_protocol(program, model, selection, decided):
    """Wrap the per-agent class BDDs as a standard joint protocol: a lookup
    evaluates each action's class BDD at the local state's observation
    point; local states outside the decided classes get the agent's
    fallback action (the ``fallback_on_unknown`` convention of the explicit
    construction)."""
    encoding = model.encoding
    protocols = {}
    for agent in model.agents:
        entries = tuple(
            (action, node) for action, node in selection[agent].items() if node != FALSE
        )
        fallback = _fallback_set(program, agent)
        decided_node = decided[agent]

        def lookup(local_state, entries=entries, fallback=fallback, decided_node=decided_node):
            point = dict(local_state)
            if not encoding.evaluate_node(decided_node, point):
                return fallback
            return frozenset(
                action
                for action, node in entries
                if encoding.evaluate_node(node, point)
            )

        protocols[agent] = Protocol(agent, lookup)
    joint = JointProtocol(protocols)
    # Canonical class-BDD ids, the currency of the symbolic fixed-point
    # machinery: _protocol_signature's enumeration-free fast path reads
    # them, and iterate_interpretation_symbolic accepts a protocol carrying
    # them as a seed.
    joint.selection_nodes = {
        agent: tuple(
            sorted(
                (str(action), node)
                for action, node in selection[agent].items()
                if node != FALSE
            )
        )
        for agent in model.agents
    }
    joint.decided_nodes = {agent: decided[agent] for agent in model.agents}
    return joint


class SymbolicSystem:
    """The system constructed by the symbolic interpretation: the reachable
    states as a BDD, with knowledge evaluated over them.

    Supports the knowledge-query slice of
    :class:`repro.systems.interpreted_system.InterpretedSystem` (``holds``,
    ``extension``, ``local_state``) plus the symbolic accessors
    (``states_node``, ``state_count``, ``iter_states``,
    ``extension_node``).  When built with the frozen protocol ``selection``
    (``construct_by_rounds_symbolic`` always passes it) the system also
    compiles its own transition relation (:meth:`transition_node`), which is
    what :class:`repro.temporal.symbolic.SymbolicCTLKModelChecker` iterates;
    run generation and the structural predicates of the explicit class need
    materialised transitions and are out of scope.
    """

    #: Dispatch marker for :class:`repro.temporal.ctlk.CTLKModelChecker`.
    is_symbolic_system = True

    def __init__(self, model, states_node, rounds, selection=None):
        self.model = model
        self.context = model
        self.states_node = states_node
        self.rounds = rounds
        self.selection = selection
        self._view = model.view(states_node)
        self._transition_node = None

    @property
    def agents(self):
        return self.model.agents

    @property
    def structure(self):
        return self._view.structure

    @property
    def evaluator(self):
        return self._view.evaluator

    def holds(self, state, formula):
        """Return ``True`` iff ``formula`` holds at the reachable ``state``."""
        return self._view.holds(state, formula)

    def extension(self, formula):
        """The extension as a frozenset of states (enumerating boundary)."""
        return self._view.extension(formula)

    def extension_node(self, formula):
        """The extension as a world-set BDD (no enumeration)."""
        return self._view.extension_node(formula)

    def holds_initially(self, formula):
        """Return ``True`` iff ``formula`` holds at every initial state."""
        bdd = self.model.encoding.bdd
        return bdd.diff(self.initial_node, self.extension_node(formula)) == FALSE

    def holds_everywhere(self, formula):
        """Return ``True`` iff ``formula`` holds at every reachable state."""
        bdd = self.model.encoding.bdd
        return bdd.diff(self.states_node, self.extension_node(formula)) == FALSE

    def local_state(self, agent, state):
        return self.model.local_state(agent, state)

    @property
    def initial_node(self):
        """The initial states as a world-set BDD (a subset of the reachable
        set by construction)."""
        bdd = self.model.encoding.bdd
        return bdd.and_(self.model.initial, self.states_node)

    def transition_node(self):
        """The (memoised) transition-relation BDD of the system over
        current/primed variable pairs, restricted to reachable states on
        both sides and *totalised*: deadlock states get an identity
        self-loop, matching the explicit checker's path-quantification
        convention.

        Assembled exactly like one :meth:`SymbolicContextModel.successors`
        image — frame ∧ environment ∧ per-agent selected effects under the
        frozen protocol — but kept as a relation instead of being collapsed
        into an image, so temporal fixed points can take pre-images through
        it with one ``and_exists`` each.
        """
        if self._transition_node is not None:
            return self._transition_node
        if self.selection is None:
            raise ModelError(
                "this SymbolicSystem carries no frozen protocol selection; "
                "transition relations need one (rebuild it through "
                "construct_by_rounds_symbolic)"
            )
        model = self.model
        encoding = model.encoding
        bdd = encoding.bdd
        relation = bdd.and_(model._frame, model._env_relation)
        for agent in model.agents:
            effects = model._agent_effects[agent]
            choice = FALSE
            for action, classes in self.selection.get(agent, {}).items():
                if classes == FALSE:
                    continue
                effect_relation, _ = effects[action]
                choice = bdd.or_(choice, bdd.and_(classes, effect_relation))
            relation = bdd.and_(relation, choice)
        relation = bdd.and_(relation, self.states_node)
        relation = bdd.and_(relation, encoding.prime(self.states_node))
        deadlocks = bdd.diff(
            self.states_node, bdd.exists(relation, encoding.primed_levels)
        )
        if deadlocks != FALSE:
            identity = TRUE
            for variable in reversed(model.state_space.variables):
                identity = bdd.and_(encoding.equality_node(variable.name), identity)
            relation = bdd.or_(relation, bdd.and_(deadlocks, identity))
        self._transition_node = relation
        return self._transition_node

    def state_count(self):
        """The number of reachable states (a BDD count, always cheap)."""
        return self._view.state_count()

    def iter_states(self):
        """Enumerate the reachable states (only for small systems)."""
        return self._view.iter_states()

    def local_states(self, agent):
        """The local states of ``agent`` over the reachable states
        (enumerates the agent's classes — boundary API)."""
        return self._view.local_states(agent)

    def summary(self):
        """Basic statistics, mirroring ``InterpretedSystem.summary``."""
        return {
            "context": self.model.name,
            "states": self.state_count(),
            "rounds": self.rounds,
            "bdd_nodes": self.model.encoding.bdd.cache_info()["nodes"],
        }

    def __repr__(self):
        return (
            f"SymbolicSystem({self.model.name!r}, |S|={self.state_count()}, "
            f"rounds={self.rounds})"
        )
