"""Enumeration-free interpretation of knowledge-based programs.

Both interpretation procedures of :mod:`repro.interpretation.iteration` have
symbolic twins here, reached transparently through the ``is_symbolic_model``
dispatch of their explicit namesakes:

:func:`construct_by_rounds_symbolic`
    the depth-stratified construction, every set a BDD (below);
:func:`iterate_interpretation_symbolic`
    the non-monotone functional iteration ``P_{k+1} = Pg^{I_rep(P_k)}``,
    with protocols as per-agent ``action -> class BDD`` maps, reachability
    as relational images, and fixed-point/cycle detection on canonical BDD
    node ids instead of enumerated protocol tables.

:func:`construct_by_rounds_symbolic` is the symbolic twin of
:func:`repro.interpretation.iteration.construct_by_rounds`: the same
depth-stratified construction — guards of newly discovered local states are
evaluated over all states discovered so far, decisions are frozen on first
appearance, the frontier advances through the protocol-restricted
transitions — but every set in the loop is a BDD of a
:class:`repro.symbolic.model.SymbolicContextModel`:

* the *view* of each round is a
  :class:`~repro.symbolic.model.SymbolicStateSetView` over the accumulated
  reachable-set BDD, so guard extensions are computed by the ``"bdd"``
  backend's relational products (batched through the shared evaluator);
* the *per-local-state decision loop* of the explicit construction becomes
  one :meth:`~repro.symbolic.model.SymbolicGuardTable.enabled_sets` call
  per agent per round: guard uniformity over a whole set of
  indistinguishability classes is two projections per guard, and the frozen
  protocol is a map ``action -> class BDD`` per agent;
* the *frontier expansion* is one relational image through the compiled
  transition relation (:meth:`SymbolicContextModel.successors`).

Nothing enumerates: a round costs BDD operations whose size tracks the
diagrams, not ``∏|domain|``, which is what lets the construction run on
contexts whose state space the explicit engines cannot even iterate (muddy
children at 20 participants has ``≈ 5·10^14`` states; its reachable-set and
protocol BDDs have a few thousand nodes).

The a-posteriori verification mirrors the explicit path's
``check_implementation``: the frozen per-round decisions are recomputed
against the *final* system and compared — equality on every decided class
is exactly the fixed-point property ``P = Pg^{I_rep(P)}`` on reachable
local states (and the generated system trivially agrees, being built from
the same frozen protocol).

The synthesis workers complete the picture — the whole search/check layer
of :mod:`repro.interpretation.synthesis` has symbolic twins here, reached
transparently through its ``is_symbolic_model`` dispatch:

:func:`check_implementation_symbolic`
    the fixed-point test: reach the candidate protocol's states by
    relational images (class-BDD selections via the protocol's
    ``selection_nodes``, or lazily evaluated per newly met class for
    arbitrary protocols), re-derive the program's selection over the
    resulting view, and compare candidate and derived protocols by node-id
    selection signatures over the occupied classes — behavioural equality
    without enumerating a single local state;
:func:`enumerate_implementations_symbolic`
    the exhaustive search: the candidate universe is the reachable set of
    the *liberal* protocol (complete — every implementation's selections
    are a subset of the liberal ones, so its reachable set is too),
    candidates are that universe's subset BDDs containing the initial
    states, and the fixed-point filter ``reach(P_R) = R`` is canonical
    node-id equality;
:func:`derive_protocol_symbolic`
    the functional ``Pg^view`` over a symbolic view, one
    :meth:`~repro.symbolic.model.SymbolicGuardTable.enabled_sets` call per
    agent instead of a per-local-state loop.
"""

from repro import obs as _obs
from repro import resilience as _res
from repro.interpretation.functional import guard_table
from repro.interpretation.iteration import IterationResult, _fallback_set
from repro.obs.registry import hit_rate
from repro.interpretation.synthesis import (
    ImplementationReport,
    run_candidate_search,
)
from repro.symbolic.bdd import FALSE, TRUE
from repro.systems.actions import NOOP_NAME
from repro.systems.protocols import JointProtocol, Protocol
from repro.util.errors import (
    BudgetExceededError,
    InterpretationError,
    IterationLimitError,
    ModelError,
    ProgramError,
)
from repro.util.helpers import stable_sort_key

__all__ = [
    "construct_by_rounds_symbolic",
    "iterate_interpretation_symbolic",
    "check_implementation_symbolic",
    "enumerate_implementations_symbolic",
    "derive_protocol_symbolic",
    "SymbolicImplementationReport",
    "SymbolicSystem",
]


def _construct_partial(rounds, seen, frontier, decided, selection):
    """Snapshot the construction loop's state as a resumable partial."""
    return _res.PartialProgress(
        "construct_by_rounds_symbolic",
        rounds=rounds,
        seen=seen,
        frontier=frontier,
        decided=dict(decided),
        selection={agent: dict(table) for agent, table in selection.items()},
    )


def _check_resume(resume, kind):
    if getattr(resume, "kind", None) != kind:
        raise InterpretationError(
            f"cannot resume {kind} from a {getattr(resume, 'kind', None)!r} partial"
        )


def construct_by_rounds_symbolic(
    program,
    model,
    max_rounds=1000,
    require_local=True,
    verify=True,
    budget=None,
    resume=None,
):
    """Depth-stratified construction over a symbolic context model.

    Returns an :class:`~repro.interpretation.iteration.IterationResult`
    whose ``system`` is a :class:`SymbolicSystem` (reachable set as a BDD,
    knowledge queries through the symbolic evaluator) and whose
    ``protocol`` is a callable-backed joint protocol evaluating the frozen
    class BDDs at any concrete local state.

    ``budget`` installs a :class:`repro.resilience.Budget` for the call;
    a raise carries the last completed round's state as a
    :class:`~repro.resilience.PartialProgress`, and passing that partial
    back as ``resume`` (against the *same* model, whose manager keeps every
    node id valid) continues the construction where it stopped — the
    canonical kernel guarantees the resumed run reaches the identical
    fixed point.
    """
    for agent in program.agents:
        program.program(agent)  # validate agents exist in the program

    bdd = model.encoding.bdd
    if resume is not None:
        _check_resume(resume, "construct_by_rounds_symbolic")
        seen = resume.seen
        frontier = resume.frontier
        decided = dict(resume.decided)
        selection = {agent: dict(table) for agent, table in resume.selection.items()}
        rounds = resume.rounds
    else:
        seen = model.initial
        frontier = model.initial
        decided = {agent: FALSE for agent in model.agents}
        selection = {agent: {} for agent in model.agents}
        rounds = 0

    with _res.activate(budget) as bud:
        snapshot = None
        while frontier != FALSE and rounds < max_rounds:
            if bud is not None:
                # Eager snapshot: if the budget fires anywhere inside the
                # round (including from the kernel mid-operation), the
                # partial must describe the consistent pre-round state, not
                # a half-mutated one.
                snapshot = _construct_partial(rounds, seen, frontier, decided, selection)
                roots = lambda: model.reorder_roots() + _in_flight_nodes(
                    seen, frontier, decided, selection
                )
                bud.tick(
                    "construct.round",
                    iterations=rounds,
                    manager=bdd,
                    roots=roots,
                    groups=model.encoding.reorder_groups,
                    partial=snapshot,
                )
            rounds += 1
            try:
                if _obs.ENABLED:
                    # Round-granularity telemetry is cheap relative to a round's BDD
                    # work: two model counts and a read of the kernel's counters.
                    _obs.event(
                        "construct.round",
                        round=rounds,
                        frontier=model.encoding.count(frontier),
                        states=model.encoding.count(seen),
                        backend="bdd",
                        cache_hit_rate=hit_rate(
                            bdd._ite_hits + bdd._op_hits, bdd._ite_misses + bdd._op_misses
                        ),
                    )
                if bdd.reorder_pending:
                    # Round boundaries are the construction's precise safe points:
                    # everything the loop holds is enumerable here, so a pending
                    # sift can collect unreachable junk as well.
                    model.maybe_reorder(
                        _in_flight_nodes(seen, frontier, decided, selection)
                    )
                view = model.view(seen)
                # One symbolic guard table per round's view: all clause guards are
                # evaluated over the accumulated states in one batched engine pass,
                # and each agent's newly appearing classes are decided at once.
                table = guard_table(view, program)
                for agent in model.agents:
                    new_classes = bdd.diff(view.project(agent, frontier), decided[agent])
                    if new_classes == FALSE:
                        continue
                    enabled = table.enabled_sets(
                        agent, new_classes, require_local=require_local
                    )
                    agent_selection = selection[agent]
                    for action, classes in enabled.items():
                        agent_selection[action] = bdd.or_(
                            agent_selection.get(action, FALSE), classes
                        )
                    decided[agent] = bdd.or_(decided[agent], new_classes)
                targets = model.successors(frontier, selection)
                frontier = bdd.diff(targets, seen)
                seen = bdd.or_(seen, frontier)
            except BudgetExceededError as error:
                raise error.attach_partial(snapshot)

        if frontier != FALSE:
            raise IterationLimitError(
                f"round-by-round construction did not close within {max_rounds} rounds",
                reason="iterations",
                site="construct.round",
                diagnostics={"max_rounds": max_rounds},
                partial=_construct_partial(rounds, seen, frontier, decided, selection),
            )

        if _obs.ENABLED:
            _obs.event(
                "fixpoint",
                loop="construct_by_rounds",
                backend="bdd",
                iterations=rounds,
                result=model.encoding.count(seen),
            )
        try:
            verified = None
            if verify:
                verified = _verify_fixed_point(
                    program, model, seen, decided, selection, require_local
                )
            protocol = _materialise_protocol(program, model, selection, decided)
        except BudgetExceededError as error:
            # The loop closed; a raise during verification still hands back
            # the full construction state (resuming redoes only the check).
            raise error.attach_partial(
                _construct_partial(rounds, seen, frontier, decided, selection)
            )
    system = SymbolicSystem(model, seen, rounds, selection=selection)
    return IterationResult(
        converged=bool(verified) if verify else True,
        protocol=protocol,
        system=system,
        iterations=rounds,
        verified=verified,
    )


def _in_flight_nodes(seen, frontier, decided, selection):
    """The construction loop's live nodes (reorder roots / sift extras)."""
    nodes = [seen, frontier]
    nodes += decided.values()
    for agent_selection in selection.values():
        nodes += agent_selection.values()
    return nodes


def _iterate_partial(iteration, current, history, seen_states):
    """Snapshot the fixed-point loop's state as a resumable partial."""
    return _res.PartialProgress(
        "iterate_interpretation_symbolic",
        iteration=iteration,
        current={agent: dict(table) for agent, table in current.items()},
        history=list(history),
        seen_states=dict(seen_states),
    )


def iterate_interpretation_symbolic(
    program,
    model,
    seed="liberal",
    max_iterations=100,
    require_local=True,
    budget=None,
    resume=None,
):
    """Iterate ``P_{k+1} = Pg^{I_rep(P_k)}`` entirely on BDDs.

    The symbolic twin of
    :func:`repro.interpretation.iteration.iterate_interpretation`: a protocol
    iterate is a per-agent map ``action -> class BDD``, representing it is a
    relational-image reachability sweep (:func:`_reach`), and deriving the
    next protocol is one :meth:`SymbolicGuardTable.enabled_sets` call per
    agent over the occupied local-state classes.  Fixed-point detection
    compares *selection signatures* — per agent, the sorted ``(action,
    node id)`` pairs of each action's class BDD restricted to the occupied
    classes; canonicity makes node-id equality exactly behavioural equality
    on the arising local states, so the test matches the explicit path's
    ``_protocol_signature`` without enumerating a single local state.

    Cycle detection keys on the reachable-set node alone: the derived
    protocol is a deterministic function of the reachable set (guards are
    evaluated over its view), and the next reachable set is a deterministic
    function of the derived protocol — so a repeated state-set node means
    the iteration has entered a cycle, mirroring the explicit
    ``system_signature`` argument.

    ``seed`` is ``"liberal"`` (all program-mentioned actions everywhere),
    ``"restrictive"`` (the fallback action everywhere), or a joint protocol
    previously materialised by the symbolic path (it carries its class BDDs
    as ``selection_nodes``).  There is no ``max_states``: nothing here
    materialises states.
    """
    for agent in program.agents:
        program.program(agent)  # validate agents exist in the program

    bdd = model.encoding.bdd
    if resume is not None:
        _check_resume(resume, "iterate_interpretation_symbolic")
        current = {agent: dict(table) for agent, table in resume.current.items()}
        seen_states = dict(resume.seen_states)
        history = list(resume.history)
        start = resume.iteration
    else:
        current = _seed_selection(program, model, seed)
        seen_states = {}
        history = []
        start = 0

    with _res.activate(budget) as bud:
        holder = []
        try:
            return _iterate_symbolic_loop(
                program, model, bdd, current, seen_states, history,
                start, max_iterations, require_local, bud, holder,
            )
        except BudgetExceededError as error:
            # A kernel-level raise mid-iteration carries no partial of its
            # own; hand back the last consistent pre-iteration snapshot.
            raise error.attach_partial(holder[0] if holder else None)


def _iterate_symbolic_loop(
    program, model, bdd, current, seen_states, history,
    start, max_iterations, require_local, bud, holder,
):
    for iteration in range(start, max_iterations):
        if bud is not None:
            snapshot = _iterate_partial(iteration, current, history, seen_states)
            holder[:] = [snapshot]
            bud.tick(
                "fixpoint.iter",
                iterations=iteration,
                manager=bdd,
                roots=lambda: _iterate_in_flight(model, current, history),
                groups=model.encoding.reorder_groups,
                partial=snapshot,
            )
        if bdd.reorder_pending:
            # Iteration boundaries are precise safe points: the loop holds
            # only the current selection, the memoised state-set views
            # (rooted by the model) and the signature nodes in ``history``.
            model.maybe_reorder(_iterate_in_flight(model, current, history))
        states, rounds, current = _reach(program, model, current)
        if _obs.ENABLED:
            _obs.event(
                "fixpoint.iter",
                loop="iterate_interpretation",
                backend="bdd",
                iteration=iteration + 1,
                node=states,
            )
        view = model.view(states)
        occupied = {agent: view.project(agent, states) for agent in model.agents}
        current_signature = _selection_signature(model, current, occupied)
        history.append(current_signature)
        table = guard_table(view, program)
        derived = {
            agent: table.enabled_sets(agent, occupied[agent], require_local=require_local)
            for agent in model.agents
        }
        derived_signature = _selection_signature(model, derived, occupied)
        if derived_signature == current_signature:
            # The derived protocol agrees with the current one on every
            # occupied class, hence generates the same system: a fixed point
            # (an implementation) has been found.
            if _obs.ENABLED:
                _obs.counter("fixpoint.iterations", iteration + 1)
                _obs.event(
                    "fixpoint",
                    loop="iterate_interpretation",
                    backend="bdd",
                    iterations=iteration + 1,
                    result="converged",
                )
            protocol = _materialise_protocol(
                program, model, derived, _decided_union(model, derived)
            )
            system = SymbolicSystem(model, states, rounds, selection=derived)
            return IterationResult(
                converged=True,
                protocol=protocol,
                system=system,
                iterations=iteration + 1,
                history=history,
            )
        if states in seen_states:
            cycle_length = iteration - seen_states[states]
            if _obs.ENABLED:
                _obs.counter("fixpoint.iterations", iteration + 1)
                _obs.event(
                    "fixpoint",
                    loop="iterate_interpretation",
                    backend="bdd",
                    iterations=iteration + 1,
                    result=f"cycle:{cycle_length}",
                )
            final_states, final_rounds, final_selection = _reach(program, model, derived)
            protocol = _materialise_protocol(
                program, model, final_selection, _decided_union(model, final_selection)
            )
            system = SymbolicSystem(
                model, final_states, final_rounds, selection=final_selection
            )
            return IterationResult(
                converged=False,
                protocol=protocol,
                system=system,
                iterations=iteration + 1,
                cycle_length=cycle_length,
                history=history,
            )
        seen_states[states] = iteration
        current = derived
    raise IterationLimitError(
        f"interpretation of {model.name!r} did not stabilise within {max_iterations} iterations",
        reason="iterations",
        site="fixpoint.iter",
        diagnostics={"max_iterations": max_iterations},
        partial=_iterate_partial(max_iterations, current, history, seen_states),
    )


def _iterate_in_flight(model, current, history):
    """The fixed-point loop's live nodes (reorder roots / sift extras)."""
    in_flight = []
    for agent_selection in current.values():
        in_flight += agent_selection.values()
    for signature in history:
        for _agent, entries in signature:
            in_flight += [node for _action, node in entries]
    return in_flight


def _seed_selection(program, model, seed):
    """The per-agent ``action -> class BDD`` map of a seed protocol."""
    if seed == "liberal":
        selection = {}
        for agent in model.agents:
            try:
                actions = frozenset(program.program(agent).actions())
            except ProgramError:
                actions = frozenset({NOOP_NAME})
            if not actions:
                actions = frozenset({NOOP_NAME})
            selection[agent] = {action: TRUE for action in actions}
        return selection
    if seed == "restrictive":
        return {
            agent: {action: TRUE for action in _fallback_set(program, agent)}
            for agent in model.agents
        }
    nodes = getattr(seed, "selection_nodes", None)
    if nodes is not None:
        return {
            agent: dict(nodes.get(agent, ())) for agent in model.agents
        }
    raise InterpretationError(
        f"unknown seed {seed!r}: the symbolic iteration accepts 'liberal', "
        f"'restrictive', or a joint protocol materialised by the symbolic path"
    )


def _reach(program, model, selection):
    """The reachable set under ``selection``, as a BFS of relational images.

    Classes no selected action covers — they appear when a derived protocol
    (decided only on the *previous* system's occupied classes) reaches new
    territory — are assigned the agent's fallback action on first contact,
    the symbolic counterpart of the explicit ``fallback_on_unknown``
    convention.  Returns ``(states, rounds, selection)`` where ``selection``
    is the (possibly augmented) copy actually used.
    """
    bdd = model.encoding.bdd
    selection = {
        agent: dict(agent_selection) for agent, agent_selection in selection.items()
    }
    covered = {}
    for agent, agent_selection in selection.items():
        node = FALSE
        for classes in agent_selection.values():
            node = bdd.or_(node, classes)
        covered[agent] = node
    seen = model.initial
    frontier = model.initial
    rounds = 0
    while frontier != FALSE:
        rounds += 1
        for agent in model.agents:
            projected = _project(model, agent, frontier)
            uncovered = bdd.diff(projected, covered[agent])
            if uncovered == FALSE:
                continue
            agent_selection = selection[agent]
            for action in _fallback_set(program, agent):
                agent_selection[action] = bdd.or_(
                    agent_selection.get(action, FALSE), uncovered
                )
            covered[agent] = bdd.or_(covered[agent], uncovered)
        targets = model.successors(frontier, selection)
        frontier = bdd.diff(targets, seen)
        seen = bdd.or_(seen, frontier)
    if _obs.ENABLED:
        _obs.event(
            "fixpoint", loop="reach", backend="bdd", iterations=rounds, result=seen
        )
    return seen, rounds, selection


def _project(model, agent, node):
    """Project a state-set BDD onto ``agent``'s observable variables."""
    levels = model.non_observable_levels(agent)
    if not levels:
        return node
    return model.encoding.bdd.exists(node, levels)


def _selection_signature(model, selection, occupied):
    """The canonical behaviour of ``selection`` on the ``occupied`` classes:
    per agent, the sorted ``(action, class-BDD id)`` pairs after restriction
    to the occupied classes (empty restrictions dropped).  Node-id equality
    of two signatures is exactly behavioural equality of the protocols on
    the local states arising from the same state set."""
    bdd = model.encoding.bdd
    signature = []
    for agent in model.agents:
        entries = []
        for action, classes in selection.get(agent, {}).items():
            node = bdd.and_(classes, occupied[agent])
            if node != FALSE:
                entries.append((str(action), node))
        signature.append((agent, tuple(sorted(entries))))
    return tuple(signature)


def _decided_union(model, selection):
    """The per-agent union of a selection's class BDDs — the classes on
    which the materialised protocol answers from the table rather than the
    fallback."""
    bdd = model.encoding.bdd
    decided = {}
    for agent in model.agents:
        node = FALSE
        for classes in selection.get(agent, {}).values():
            node = bdd.or_(node, classes)
        decided[agent] = node
    return decided


def _verify_fixed_point(program, model, seen, decided, selection, require_local):
    """Recompute every decided class's clause selection against the final
    system and compare with the frozen decisions — the implementation
    fixed-point test, per class instead of per local state."""
    view = model.view(seen)
    table = guard_table(view, program)
    bdd = model.encoding.bdd
    for agent in model.agents:
        try:
            final = table.enabled_sets(agent, decided[agent], require_local=require_local)
        except InterpretationError:
            return False
        frozen = selection[agent]
        for action in set(final) | set(frozen):
            if final.get(action, FALSE) != frozen.get(action, FALSE):
                return False
    return True


def _materialise_protocol(program, model, selection, decided, fallback_on_unknown=True):
    """Wrap the per-agent class BDDs as a standard joint protocol: a lookup
    evaluates each action's class BDD at the local state's observation
    point; local states outside the decided classes get the agent's
    fallback action when ``fallback_on_unknown`` is set (the convention of
    the explicit construction), otherwise looking them up raises — the two
    conventions of :func:`repro.interpretation.functional.derive_protocol`."""
    encoding = model.encoding
    protocols = {}
    for agent in model.agents:
        entries = tuple(
            (action, node) for action, node in selection[agent].items() if node != FALSE
        )
        fallback = _fallback_set(program, agent) if fallback_on_unknown else None
        decided_node = decided[agent]

        def lookup(
            local_state,
            agent=agent,
            entries=entries,
            fallback=fallback,
            decided_node=decided_node,
        ):
            point = dict(local_state)
            if not encoding.evaluate_node(decided_node, point):
                if fallback is None:
                    raise ProgramError(
                        f"protocol of agent {agent!r} has no action for "
                        f"local state {local_state!r}"
                    )
                return fallback
            return frozenset(
                action
                for action, node in entries
                if encoding.evaluate_node(node, point)
            )

        protocols[agent] = Protocol(agent, lookup)
    joint = JointProtocol(protocols)
    # Canonical class-BDD ids, the currency of the symbolic fixed-point
    # machinery: _protocol_signature's enumeration-free fast path reads
    # them, and iterate_interpretation_symbolic accepts a protocol carrying
    # them as a seed.
    joint.selection_nodes = {
        agent: tuple(
            sorted(
                (str(action), node)
                for action, node in selection[agent].items()
                if node != FALSE
            )
        )
        for agent in model.agents
    }
    joint.decided_nodes = {agent: decided[agent] for agent in model.agents}
    return joint


# ---------------------------------------------------------------------------
# synthesis workers (the symbolic carrier of repro.interpretation.synthesis)
# ---------------------------------------------------------------------------


def derive_protocol_symbolic(program, view, require_local=True, fallback_on_unknown=True):
    """The functional ``Pg^view`` over a symbolic view or system.

    The symbolic twin of
    :func:`repro.interpretation.functional.derive_protocol` (which
    dispatches here on the view's ``is_symbolic_view`` marker): instead of
    tabulating ``enabled_actions`` per local state, one
    :meth:`~repro.symbolic.model.SymbolicGuardTable.enabled_sets` call per
    agent decides every occupied class at once, and the result is a
    materialised joint protocol carrying its class BDDs as
    ``selection_nodes``.
    """
    model = view.model
    states_node = view.states_node
    view = model.view(states_node)  # the memoised canonical view of the set
    table = guard_table(view, program)
    selection = {
        agent: table.enabled_sets(
            agent, view.project(agent, states_node), require_local=require_local
        )
        for agent in model.agents
    }
    return _materialise_protocol(
        program,
        model,
        selection,
        _decided_union(model, selection),
        fallback_on_unknown=fallback_on_unknown,
    )


def _candidate_reach(model, program, joint_protocol):
    """Reach the states generated by an arbitrary candidate protocol.

    Protocols materialised by the symbolic path carry their behaviour as
    class BDDs (``selection_nodes``) and go straight through :func:`_reach`
    — the PR 6 fast path, no state ever enumerated.  Any other joint
    protocol is evaluated *lazily*: each round, the frontier's newly met
    local-state classes (per agent) are enumerated and the protocol is
    asked for its action set at exactly those points, accumulating the same
    ``action -> class BDD`` selection.  Cost is proportional to the number
    of distinct local states the candidate actually reaches — the quantity
    the explicit ``represent`` enumerates anyway — not to the state space.

    Returns ``(states, rounds, selection)``.
    """
    nodes = getattr(joint_protocol, "selection_nodes", None)
    if nodes is not None:
        selection = {agent: dict(nodes.get(agent, ())) for agent in model.agents}
        return _reach(program, model, selection)
    encoding = model.encoding
    bdd = encoding.bdd
    selection = {agent: {} for agent in model.agents}
    covered = {agent: FALSE for agent in model.agents}
    seen = model.initial
    frontier = model.initial
    rounds = 0
    while frontier != FALSE:
        rounds += 1
        for agent in model.agents:
            new_classes = bdd.diff(_project(model, agent, frontier), covered[agent])
            if new_classes == FALSE:
                continue
            names = model.observables[agent]
            agent_selection = selection[agent]
            for assignment in encoding.iter_assignments(new_classes, names):
                local_state = tuple(sorted(assignment.items()))
                cube = encoding.cube_node(local_state)
                for action in joint_protocol.actions(agent, local_state):
                    agent_selection[action] = bdd.or_(
                        agent_selection.get(action, FALSE), cube
                    )
            covered[agent] = bdd.or_(covered[agent], new_classes)
        targets = model.successors(frontier, selection)
        frontier = bdd.diff(targets, seen)
        seen = bdd.or_(seen, frontier)
    return seen, rounds, selection


class SymbolicImplementationReport(ImplementationReport):
    """An :class:`~repro.interpretation.synthesis.ImplementationReport`
    whose verdict was decided on class BDDs.

    ``differences`` is computed lazily on first access — the verdict is
    node-id signature equality and never enumerates local states; only
    reading the disagreements enumerates, and then only the classes inside
    the (usually tiny) symmetric-difference regions, never the agreeing
    bulk."""

    def __init__(
        self,
        is_implementation,
        system,
        derived_protocol,
        candidate_protocol,
        candidate_selection,
        derived_selection,
        occupied,
    ):
        super().__init__(is_implementation, system, derived_protocol, differences=None)
        self._candidate_protocol = candidate_protocol
        self._candidate_selection = candidate_selection
        self._derived_selection = derived_selection
        self._occupied = occupied

    @property
    def differences(self):
        if self._differences is None:
            self._differences = self._compute_differences()
        return self._differences

    def _compute_differences(self):
        model = self.system.model
        encoding = model.encoding
        bdd = encoding.bdd
        differences = []
        for agent in model.agents:
            occupied = self._occupied[agent]
            candidate = {
                action: bdd.and_(classes, occupied)
                for action, classes in self._candidate_selection.get(agent, {}).items()
            }
            derived = {
                action: bdd.and_(classes, occupied)
                for action, classes in self._derived_selection.get(agent, {}).items()
            }
            region = FALSE
            for action in set(candidate) | set(derived):
                c = candidate.get(action, FALSE)
                d = derived.get(action, FALSE)
                region = bdd.or_(region, bdd.or_(bdd.diff(c, d), bdd.diff(d, c)))
            if region == FALSE:
                continue
            names = model.observables[agent]
            locals_here = sorted(
                (
                    tuple(sorted(assignment.items()))
                    for assignment in encoding.iter_assignments(region, names)
                ),
                key=stable_sort_key,
            )
            for local_state in locals_here:
                point = dict(local_state)
                candidate_actions = frozenset(
                    action
                    for action, node in candidate.items()
                    if encoding.evaluate_node(node, point)
                )
                derived_actions = frozenset(
                    action
                    for action, node in derived.items()
                    if encoding.evaluate_node(node, point)
                )
                differences.append(
                    (agent, local_state, candidate_actions, derived_actions)
                )
        return differences


def check_implementation_symbolic(joint_protocol, program, model, require_local=True):
    """The fixed-point test ``P = Pg^{I_rep(P)}`` entirely on BDDs.

    Generates the candidate's system by relational images
    (:func:`_candidate_reach`), derives the program's selection over the
    resulting view (one ``enabled_sets`` call per agent), and compares the
    two protocols by :func:`_selection_signature` — per agent, the sorted
    ``(action, class-BDD node id)`` pairs after restriction to the occupied
    classes.  Canonicity of the ROBDD kernel makes node-id equality exactly
    behavioural equality on the arising local states, i.e. the same
    verdict the explicit per-local-state comparison loop reaches.
    """
    for agent in program.agents:
        program.program(agent)  # validate agents exist in the program

    states, rounds, candidate_selection = _candidate_reach(model, program, joint_protocol)
    view = model.view(states)
    occupied = {agent: view.project(agent, states) for agent in model.agents}
    table = guard_table(view, program)
    derived_selection = {
        agent: table.enabled_sets(agent, occupied[agent], require_local=require_local)
        for agent in model.agents
    }
    candidate_signature = _selection_signature(model, candidate_selection, occupied)
    derived_signature = _selection_signature(model, derived_selection, occupied)
    system = SymbolicSystem(model, states, rounds, selection=candidate_selection)
    derived_protocol = _materialise_protocol(
        program, model, derived_selection, _decided_union(model, derived_selection)
    )
    return SymbolicImplementationReport(
        candidate_signature == derived_signature,
        system,
        derived_protocol,
        joint_protocol,
        candidate_selection,
        derived_selection,
        occupied,
    )


class SymbolicSynthesisOps:
    """BDD primitives for
    :func:`repro.interpretation.synthesis.run_candidate_search`.

    The candidate universe defaults to the reachable set of the *liberal*
    protocol (all program-mentioned actions, fallback included, at every
    class).  This restriction is complete: any implementation's derived
    selections come from clause actions and the fallback, hence are a
    pointwise subset of the liberal selection, so its transition relation —
    and with it its reachable set — is contained in the liberal one.
    Candidates are subset BDDs of that universe containing the initial
    states, and because the ROBDD kernel is canonical, the fixed-point
    filter ``reach(P_R) = R`` and the behavioural dedupe are both plain
    node-id comparisons.
    """

    def __init__(self, program, model, all_states=None, require_local=True):
        for agent in program.agents:
            program.program(agent)  # validate agents exist in the program
        self.program = program
        self.model = model
        self.require_local = require_local
        encoding = model.encoding
        bdd = encoding.bdd
        if all_states is None:
            universe, _, _ = _reach(
                program, model, _seed_selection(program, model, "liberal")
            )
        elif isinstance(all_states, int):  # a state-set BDD node
            universe = all_states
        else:
            universe = FALSE
            for state in all_states:
                universe = bdd.or_(universe, encoding.state_node(state))
        self.universe = universe
        self._free_node = bdd.diff(universe, model.initial)

    def free_count(self):
        # A BDD model count — the oversized-universe guard never enumerates.
        return self.model.encoding.count(self._free_node)

    def free_states(self):
        encoding = self.model.encoding
        return [
            encoding.state_node(state) for state in encoding.iter_states(self._free_node)
        ]

    def candidate(self, extra):
        bdd = self.model.encoding.bdd
        node = self.model.initial
        for cube in extra:
            node = bdd.or_(node, cube)
        return node

    def derive(self, candidate):
        view = self.model.view(candidate)
        table = guard_table(view, self.program)
        selection = {
            agent: table.enabled_sets(
                agent, view.project(agent, candidate), require_local=self.require_local
            )
            for agent in self.model.agents
        }
        return _materialise_protocol(
            self.program, self.model, selection, _decided_union(self.model, selection)
        )

    def represent(self, protocol):
        selection = {
            agent: dict(protocol.selection_nodes.get(agent, ()))
            for agent in self.model.agents
        }
        states, rounds, used = _reach(self.program, self.model, selection)
        return SymbolicSystem(self.model, states, rounds, selection=used), states

    def matches(self, reachable, candidate):
        return reachable == candidate  # canonical nodes: id equality is set equality

    def key(self, reachable):
        return reachable


def enumerate_implementations_symbolic(
    program,
    model,
    all_states=None,
    max_free_states=16,
    require_local=True,
    budget=None,
):
    """The symbolic search worker (see
    :func:`repro.interpretation.synthesis.enumerate_implementations` for the
    dispatching public entry point and parameter documentation).

    ``all_states`` may override the liberal-reachable candidate universe
    with an iterable of states or a state-set BDD node."""
    ops = SymbolicSynthesisOps(
        program, model, all_states=all_states, require_local=require_local
    )
    return run_candidate_search(ops, max_free_states, budget=budget)


class SymbolicSystem:
    """The system constructed by the symbolic interpretation: the reachable
    states as a BDD, with knowledge evaluated over them.

    Supports the knowledge-query slice of
    :class:`repro.systems.interpreted_system.InterpretedSystem` (``holds``,
    ``extension``, ``local_state``) plus the symbolic accessors
    (``states_node``, ``state_count``, ``iter_states``,
    ``extension_node``).  When built with the frozen protocol ``selection``
    (``construct_by_rounds_symbolic`` always passes it) the system also
    compiles its own transition relation (:meth:`transition_node`), which is
    what :class:`repro.temporal.symbolic.SymbolicCTLKModelChecker` iterates;
    run generation and the structural predicates of the explicit class need
    materialised transitions and are out of scope.
    """

    #: Dispatch marker for :class:`repro.temporal.ctlk.CTLKModelChecker`.
    is_symbolic_system = True

    #: Dispatch marker for
    #: :func:`repro.interpretation.functional.derive_protocol` — a symbolic
    #: system is a symbolic view of its own reachable set.
    is_symbolic_view = True

    def __init__(self, model, states_node, rounds, selection=None):
        self.model = model
        self.context = model
        self.states_node = states_node
        self.rounds = rounds
        self.selection = selection
        self._view = model.view(states_node)
        self._transition_node = None

    @property
    def agents(self):
        return self.model.agents

    @property
    def structure(self):
        return self._view.structure

    @property
    def evaluator(self):
        return self._view.evaluator

    def holds(self, state, formula):
        """Return ``True`` iff ``formula`` holds at the reachable ``state``."""
        return self._view.holds(state, formula)

    def extension(self, formula):
        """The extension as a frozenset of states (enumerating boundary)."""
        return self._view.extension(formula)

    def extension_node(self, formula):
        """The extension as a world-set BDD (no enumeration)."""
        return self._view.extension_node(formula)

    def holds_initially(self, formula):
        """Return ``True`` iff ``formula`` holds at every initial state."""
        bdd = self.model.encoding.bdd
        return bdd.diff(self.initial_node, self.extension_node(formula)) == FALSE

    def holds_everywhere(self, formula):
        """Return ``True`` iff ``formula`` holds at every reachable state."""
        bdd = self.model.encoding.bdd
        return bdd.diff(self.states_node, self.extension_node(formula)) == FALSE

    def local_state(self, agent, state):
        return self.model.local_state(agent, state)

    @property
    def initial_node(self):
        """The initial states as a world-set BDD (a subset of the reachable
        set by construction)."""
        bdd = self.model.encoding.bdd
        return bdd.and_(self.model.initial, self.states_node)

    def transition_node(self):
        """The (memoised) transition-relation BDD of the system over
        current/primed variable pairs, restricted to reachable states on
        both sides and *totalised*: deadlock states get an identity
        self-loop, matching the explicit checker's path-quantification
        convention.

        Assembled exactly like one :meth:`SymbolicContextModel.successors`
        image — frame ∧ environment ∧ per-agent selected effects under the
        frozen protocol — but kept as a relation instead of being collapsed
        into an image, so temporal fixed points can take pre-images through
        it with one ``and_exists`` each.
        """
        if self._transition_node is not None:
            return self._transition_node
        if self.selection is None:
            raise ModelError(
                "this SymbolicSystem carries no frozen protocol selection; "
                "transition relations need one (rebuild it through "
                "construct_by_rounds_symbolic)"
            )
        model = self.model
        encoding = model.encoding
        bdd = encoding.bdd
        relation = bdd.and_(model._frame, model._env_relation)
        for agent in model.agents:
            effects = model._agent_effects[agent]
            choice = FALSE
            for action, classes in self.selection.get(agent, {}).items():
                if classes == FALSE:
                    continue
                effect_relation, _ = effects[action]
                choice = bdd.or_(choice, bdd.and_(classes, effect_relation))
            relation = bdd.and_(relation, choice)
        relation = bdd.and_(relation, self.states_node)
        relation = bdd.and_(relation, encoding.prime(self.states_node))
        deadlocks = bdd.diff(
            self.states_node, bdd.exists(relation, encoding.primed_levels)
        )
        if deadlocks != FALSE:
            identity = TRUE
            for variable in reversed(model.state_space.variables):
                identity = bdd.and_(encoding.equality_node(variable.name), identity)
            relation = bdd.or_(relation, bdd.and_(deadlocks, identity))
        self._transition_node = relation
        return self._transition_node

    def state_count(self):
        """The number of reachable states (a BDD count, always cheap)."""
        return self._view.state_count()

    def __len__(self):
        return self.state_count()

    def iter_states(self):
        """Enumerate the reachable states (only for small systems)."""
        return self._view.iter_states()

    def local_states(self, agent):
        """The local states of ``agent`` over the reachable states
        (enumerates the agent's classes — boundary API)."""
        return self._view.local_states(agent)

    def summary(self):
        """Basic statistics, mirroring ``InterpretedSystem.summary``."""
        return {
            "context": self.model.name,
            "states": self.state_count(),
            "rounds": self.rounds,
            "bdd_nodes": self.model.encoding.bdd.cache_info()["nodes"],
        }

    def __repr__(self):
        return (
            f"SymbolicSystem({self.model.name!r}, |S|={self.state_count()}, "
            f"rounds={self.rounds})"
        )
