"""Enumeration-free round-based interpretation of knowledge-based programs.

:func:`construct_by_rounds_symbolic` is the symbolic twin of
:func:`repro.interpretation.iteration.construct_by_rounds`: the same
depth-stratified construction — guards of newly discovered local states are
evaluated over all states discovered so far, decisions are frozen on first
appearance, the frontier advances through the protocol-restricted
transitions — but every set in the loop is a BDD of a
:class:`repro.symbolic.model.SymbolicContextModel`:

* the *view* of each round is a
  :class:`~repro.symbolic.model.SymbolicStateSetView` over the accumulated
  reachable-set BDD, so guard extensions are computed by the ``"bdd"``
  backend's relational products (batched through the shared evaluator);
* the *per-local-state decision loop* of the explicit construction becomes
  one :meth:`~repro.symbolic.model.SymbolicGuardTable.enabled_sets` call
  per agent per round: guard uniformity over a whole set of
  indistinguishability classes is two projections per guard, and the frozen
  protocol is a map ``action -> class BDD`` per agent;
* the *frontier expansion* is one relational image through the compiled
  transition relation (:meth:`SymbolicContextModel.successors`).

Nothing enumerates: a round costs BDD operations whose size tracks the
diagrams, not ``∏|domain|``, which is what lets the construction run on
contexts whose state space the explicit engines cannot even iterate (muddy
children at 20 participants has ``≈ 5·10^14`` states; its reachable-set and
protocol BDDs have a few thousand nodes).

The a-posteriori verification mirrors the explicit path's
``check_implementation``: the frozen per-round decisions are recomputed
against the *final* system and compared — equality on every decided class
is exactly the fixed-point property ``P = Pg^{I_rep(P)}`` on reachable
local states (and the generated system trivially agrees, being built from
the same frozen protocol).
"""

from repro.interpretation.functional import guard_table
from repro.interpretation.iteration import IterationResult, _fallback_set
from repro.symbolic.bdd import FALSE
from repro.systems.protocols import JointProtocol, Protocol
from repro.util.errors import InterpretationError

__all__ = ["construct_by_rounds_symbolic", "SymbolicSystem"]


def construct_by_rounds_symbolic(
    program,
    model,
    max_rounds=1000,
    require_local=True,
    verify=True,
):
    """Depth-stratified construction over a symbolic context model.

    Returns an :class:`~repro.interpretation.iteration.IterationResult`
    whose ``system`` is a :class:`SymbolicSystem` (reachable set as a BDD,
    knowledge queries through the symbolic evaluator) and whose
    ``protocol`` is a callable-backed joint protocol evaluating the frozen
    class BDDs at any concrete local state.
    """
    for agent in program.agents:
        program.program(agent)  # validate agents exist in the program

    bdd = model.encoding.bdd
    seen = model.initial
    frontier = model.initial
    decided = {agent: FALSE for agent in model.agents}
    selection = {agent: {} for agent in model.agents}

    rounds = 0
    while frontier != FALSE and rounds < max_rounds:
        rounds += 1
        view = model.view(seen)
        # One symbolic guard table per round's view: all clause guards are
        # evaluated over the accumulated states in one batched engine pass,
        # and each agent's newly appearing classes are decided at once.
        table = guard_table(view, program)
        for agent in model.agents:
            new_classes = bdd.diff(view.project(agent, frontier), decided[agent])
            if new_classes == FALSE:
                continue
            enabled = table.enabled_sets(agent, new_classes, require_local=require_local)
            agent_selection = selection[agent]
            for action, classes in enabled.items():
                agent_selection[action] = bdd.or_(
                    agent_selection.get(action, FALSE), classes
                )
            decided[agent] = bdd.or_(decided[agent], new_classes)
        targets = model.successors(frontier, selection)
        frontier = bdd.diff(targets, seen)
        seen = bdd.or_(seen, frontier)

    if frontier != FALSE:
        raise InterpretationError(
            f"round-by-round construction did not close within {max_rounds} rounds"
        )

    verified = None
    if verify:
        verified = _verify_fixed_point(
            program, model, seen, decided, selection, require_local
        )
    protocol = _materialise_protocol(program, model, selection, decided)
    system = SymbolicSystem(model, seen, rounds)
    return IterationResult(
        converged=bool(verified) if verify else True,
        protocol=protocol,
        system=system,
        iterations=rounds,
        verified=verified,
    )


def _verify_fixed_point(program, model, seen, decided, selection, require_local):
    """Recompute every decided class's clause selection against the final
    system and compare with the frozen decisions — the implementation
    fixed-point test, per class instead of per local state."""
    view = model.view(seen)
    table = guard_table(view, program)
    bdd = model.encoding.bdd
    for agent in model.agents:
        try:
            final = table.enabled_sets(agent, decided[agent], require_local=require_local)
        except InterpretationError:
            return False
        frozen = selection[agent]
        for action in set(final) | set(frozen):
            if final.get(action, FALSE) != frozen.get(action, FALSE):
                return False
    return True


def _materialise_protocol(program, model, selection, decided):
    """Wrap the per-agent class BDDs as a standard joint protocol: a lookup
    evaluates each action's class BDD at the local state's observation
    point; local states outside the decided classes get the agent's
    fallback action (the ``fallback_on_unknown`` convention of the explicit
    construction)."""
    encoding = model.encoding
    protocols = {}
    for agent in model.agents:
        entries = tuple(
            (action, node) for action, node in selection[agent].items() if node != FALSE
        )
        fallback = _fallback_set(program, agent)
        decided_node = decided[agent]

        def lookup(local_state, entries=entries, fallback=fallback, decided_node=decided_node):
            point = dict(local_state)
            if not encoding.evaluate_node(decided_node, point):
                return fallback
            return frozenset(
                action
                for action, node in entries
                if encoding.evaluate_node(node, point)
            )

        protocols[agent] = Protocol(agent, lookup)
    return JointProtocol(protocols)


class SymbolicSystem:
    """The system constructed by the symbolic interpretation: the reachable
    states as a BDD, with knowledge evaluated over them.

    Supports the knowledge-query slice of
    :class:`repro.systems.interpreted_system.InterpretedSystem` (``holds``,
    ``extension``, ``local_state``) plus the symbolic accessors
    (``states_node``, ``state_count``, ``iter_states``,
    ``extension_node``); run generation and the structural predicates of
    the explicit class need materialised transitions and are out of scope.
    """

    def __init__(self, model, states_node, rounds):
        self.model = model
        self.context = model
        self.states_node = states_node
        self.rounds = rounds
        self._view = model.view(states_node)

    @property
    def agents(self):
        return self.model.agents

    @property
    def structure(self):
        return self._view.structure

    @property
    def evaluator(self):
        return self._view.evaluator

    def holds(self, state, formula):
        """Return ``True`` iff ``formula`` holds at the reachable ``state``."""
        return self._view.holds(state, formula)

    def extension(self, formula):
        """The extension as a frozenset of states (enumerating boundary)."""
        return self._view.extension(formula)

    def extension_node(self, formula):
        """The extension as a world-set BDD (no enumeration)."""
        return self._view.extension_node(formula)

    def local_state(self, agent, state):
        return self.model.local_state(agent, state)

    def state_count(self):
        """The number of reachable states (a BDD count, always cheap)."""
        return self._view.state_count()

    def iter_states(self):
        """Enumerate the reachable states (only for small systems)."""
        return self._view.iter_states()

    def local_states(self, agent):
        """The local states of ``agent`` over the reachable states
        (enumerates the agent's classes — boundary API)."""
        return self._view.local_states(agent)

    def summary(self):
        """Basic statistics, mirroring ``InterpretedSystem.summary``."""
        return {
            "context": self.model.name,
            "states": self.state_count(),
            "rounds": self.rounds,
            "bdd_nodes": self.model.encoding.bdd.cache_info()["nodes"],
        }

    def __repr__(self):
        return (
            f"SymbolicSystem({self.model.name!r}, |S|={self.state_count()}, "
            f"rounds={self.rounds})"
        )
