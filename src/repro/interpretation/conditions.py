"""Sufficient conditions for unique interpretability.

The paper's chain of sufficient conditions is

    synchrony  ==>  provision of epistemic witnesses  ==>  dependence on the
    past  ==>  at most one implementation.

This module checks each of the three conditions on concrete (finite) systems
and programs:

* :func:`system_is_synchronous` — indistinguishable reachable states are
  first reached at the same depth;
* :func:`program_provides_witnesses` — for every ``K`` subformula of the
  program's guards, whenever the knowledge fails at depth ``k`` there is a
  counterexample of depth at most ``k``;
* :func:`depends_on_past` — the definition itself, checked over a finite
  class of candidate systems: whenever two systems agree on the transitions
  reachable within ``k`` rounds, every guard has the same value in both at
  every state reachable within ``k`` rounds.

All three are *semantic* checks over given systems.  The convenience
function :func:`sufficient_conditions_report` evaluates them for a program
over the systems produced by the iterative interpretation and the search,
producing the data reported in EXPERIMENTS.md.
"""

from repro.logic.formula import Knows
from repro.util.errors import InterpretationError


def system_is_synchronous(system):
    """Return ``True`` if the interpreted system is synchronous."""
    return system.is_synchronous()


def program_provides_witnesses(program, systems):
    """Check provision of epistemic witnesses for every guard of ``program``
    in every system of ``systems``.

    ``systems`` is an iterable of interpreted systems (typically the
    candidate interpretations of the program); the paper's notion quantifies
    over all interpretations of the program, which for finite analyses is
    approximated by the systems supplied here.
    """
    guards = program.guards()
    return all(system.provides_epistemic_witnesses(guards) for system in systems)


def _transitions_within_depth(system, depth):
    """The paper's ``T_k``: transitions whose source is reachable within
    ``depth - 1`` rounds (``T_0`` is empty)."""
    if depth <= 0:
        return frozenset()
    transition_system = system.transition_system
    sources = transition_system.states_within_depth(depth - 1)
    return frozenset(
        (source, target)
        for source, target in transition_system.transition_relation()
        if source in sources
    )


def depends_on_past(program, systems, max_depth=None):
    """Check that every guard of ``program`` depends on the past w.r.t. the
    finite class ``systems``.

    For every pair of systems, every depth ``k`` (up to the larger of the two
    systems' depths, or ``max_depth``), and every guard: if the two systems
    have identical ``T_k`` then the guard has the same value in both systems
    at every state reachable within ``k`` rounds in both.
    """
    systems = list(systems)
    guards = program.guards()
    for index, first in enumerate(systems):
        for second in systems[index + 1 :]:
            depth_bound = max(
                first.transition_system.max_depth(), second.transition_system.max_depth()
            ) + 1
            if max_depth is not None:
                depth_bound = min(depth_bound, max_depth)
            for depth in range(depth_bound + 1):
                if _transitions_within_depth(first, depth) != _transitions_within_depth(
                    second, depth
                ):
                    continue
                shared = first.transition_system.states_within_depth(
                    depth
                ) & second.transition_system.states_within_depth(depth)
                for guard in guards:
                    first_extension = first.extension(guard)
                    second_extension = second.extension(guard)
                    for state in shared:
                        if (state in first_extension) != (state in second_extension):
                            return False
    return True


def sufficient_conditions_report(program, context, systems):
    """Evaluate the paper's condition chain for ``program`` over ``systems``.

    Returns a dictionary with keys ``synchronous`` (all systems synchronous),
    ``provides_witnesses``, ``depends_on_past`` and ``at_most_one_expected``
    (the conjunction-implied conclusion: ``True`` when any of the sufficient
    conditions holds).
    """
    systems = list(systems)
    if not systems:
        raise InterpretationError("need at least one system to evaluate the conditions")
    synchronous = all(system.is_synchronous() for system in systems)
    witnesses = program_provides_witnesses(program, systems)
    past = depends_on_past(program, systems)
    return {
        "context": context.name,
        "synchronous": synchronous,
        "provides_witnesses": witnesses,
        "depends_on_past": past,
        "at_most_one_expected": synchronous or witnesses or past,
    }


def knowledge_guards(program):
    """Return the set of ``K`` subformulas occurring in the program's guards
    (the formulas witness provision is about)."""
    result = set()
    for guard in program.guards():
        for sub in guard.subformulas():
            if isinstance(sub, Knows):
                result.add(sub)
    return result
