"""The explicit carrier of the exhaustive implementation search.

Because the interpretation functional is not monotone, a program may have no
implementation, exactly one, or several.  For small models the full space of
candidate behaviours can be enumerated: every implementation ``P`` is the
protocol derived from its own set of reachable states, so it suffices to
enumerate candidate reachable-state sets ``R`` (supersets of the initial
states within the global state space), derive the protocol ``P_R`` from the
epistemic structure over ``R``, and keep exactly those candidates whose
generated system reaches precisely ``R``.  This is complete: distinct
implementations have distinct reachable sets or agree behaviourally.

The candidate loop itself is representation-neutral and lives in
:func:`repro.interpretation.synthesis.run_candidate_search`; this module
supplies the explicit primitives (frozenset candidates over an enumerated
state space, table protocols, ``represent``-based generation).  The public
dispatching entry points — re-exported here for compatibility — are in
:mod:`repro.interpretation.synthesis`; the symbolic primitives (BDD
candidates restricted to the liberal reachable universe) are in
:mod:`repro.interpretation.symbolic`.

The explicit search needs the *full* global state space, which is available
for variable-based contexts (``context.spec``) or can be passed explicitly.

Per candidate the protocol is derived through
:func:`repro.interpretation.functional.derive_protocol`, i.e. the batched
:func:`repro.interpretation.functional.guard_table` path: all guards are
evaluated over the candidate's epistemic structure in one engine pass
rather than once per ``(local state, clause)`` pair — the dominant cost of
the exponential candidate loop.
"""

from repro.interpretation.functional import StateSetView, derive_protocol
from repro.interpretation.synthesis import (  # noqa: F401  (compat re-exports)
    ImplementationSearchResult,
    classify_program,
    enumerate_implementations,
    run_candidate_search,
    search,
)
from repro.systems.interpreted_system import represent
from repro.util.errors import InterpretationError
from repro.util.helpers import stable_sort_key

__all__ = [
    "ImplementationSearchResult",
    "classify_program",
    "enumerate_implementations",
    "enumerate_implementations_explicit",
    "search",
]


def _full_state_space(context, all_states):
    if all_states is not None:
        return list(all_states)
    spec = getattr(context, "spec", None)
    if spec is None:
        raise InterpretationError(
            "exhaustive search needs the full global state space: pass all_states= "
            "or use a variable-based context"
        )
    return list(spec.state_space.states())


class ExplicitSynthesisOps:
    """Enumerated-state primitives for
    :func:`repro.interpretation.synthesis.run_candidate_search`: candidates
    are frozensets of states drawn from the full global state space,
    derivation tabulates protocols over a :class:`StateSetView`, and
    generation is :func:`repro.systems.interpreted_system.represent`."""

    def __init__(self, program, context, all_states=None, require_local=True, max_states=100000):
        self.program = program
        self.context = context
        self.require_local = require_local
        self.max_states = max_states
        states = _full_state_space(context, all_states)
        self.initial_set = frozenset(dict.fromkeys(context.initial_states))
        self.free = [state for state in states if state not in self.initial_set]

    def free_count(self):
        return len(self.free)

    def free_states(self):
        return self.free

    def candidate(self, extra):
        return self.initial_set | frozenset(extra)

    def derive(self, candidate):
        view = StateSetView(self.context, sorted(candidate, key=stable_sort_key))
        return derive_protocol(self.program, view, require_local=self.require_local)

    def represent(self, protocol):
        system = represent(self.context, protocol, max_states=self.max_states)
        return system, frozenset(system.states)

    def matches(self, reachable, candidate):
        return reachable == candidate

    def key(self, reachable):
        return reachable


def enumerate_implementations_explicit(
    program,
    context,
    all_states=None,
    max_free_states=16,
    require_local=True,
    max_states=100000,
    budget=None,
):
    """The enumerating search worker (see
    :func:`repro.interpretation.synthesis.enumerate_implementations` for the
    dispatching public entry point and parameter documentation)."""
    ops = ExplicitSynthesisOps(
        program,
        context,
        all_states=all_states,
        require_local=require_local,
        max_states=max_states,
    )
    return run_candidate_search(ops, max_free_states, budget=budget)
