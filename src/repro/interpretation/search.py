"""Exhaustive search for all implementations of a knowledge-based program.

Because the interpretation functional is not monotone, a program may have no
implementation, exactly one, or several.  For small models the full space of
candidate behaviours can be enumerated: every implementation ``P`` is the
protocol derived from its own set of reachable states, so it suffices to
enumerate candidate reachable-state sets ``R`` (supersets of the initial
states within the global state space), derive the protocol ``P_R`` from the
epistemic structure over ``R``, and keep exactly those candidates whose
generated system reaches precisely ``R``.  This is complete: distinct
implementations have distinct reachable sets or agree behaviourally.

The search needs the *full* global state space, which is available for
variable-based contexts (``context.spec``) or can be passed explicitly.

Per candidate the protocol is derived through
:func:`repro.interpretation.functional.derive_protocol`, i.e. the batched
:func:`repro.interpretation.functional.guard_table` path: all guards are
evaluated over the candidate's epistemic structure in one engine pass
rather than once per ``(local state, clause)`` pair — the dominant cost of
the exponential candidate loop.
"""

from itertools import combinations

from repro.interpretation.functional import StateSetView, derive_protocol
from repro.systems.interpreted_system import represent
from repro.util.errors import InterpretationError
from repro.util.helpers import stable_sort_key


class ImplementationSearchResult:
    """All implementations of a program in a context.

    Attributes
    ----------
    implementations:
        List of ``(joint protocol, interpreted system)`` pairs, one per
        behaviourally distinct implementation, ordered by the number of
        reachable states.
    candidates_checked:
        How many candidate reachable-state sets were examined.
    classification:
        ``"contradictory"`` (no implementation), ``"unique"`` or
        ``"multiple"``.
    """

    def __init__(self, implementations, candidates_checked):
        self.implementations = sorted(implementations, key=lambda pair: len(pair[1]))
        self.candidates_checked = candidates_checked

    @property
    def classification(self):
        if not self.implementations:
            return "contradictory"
        if len(self.implementations) == 1:
            return "unique"
        return "multiple"

    def __len__(self):
        return len(self.implementations)

    def __iter__(self):
        return iter(self.implementations)

    def unique(self):
        """Return the unique implementation, or raise if there is not exactly
        one."""
        if len(self.implementations) != 1:
            raise InterpretationError(
                f"expected a unique implementation, found {len(self.implementations)}"
            )
        return self.implementations[0]

    def reachable_sets(self):
        """Return the list of reachable-state sets of the implementations."""
        return [frozenset(system.states) for _, system in self.implementations]

    def __repr__(self):
        return (
            f"ImplementationSearchResult({self.classification}, "
            f"{len(self.implementations)} implementation(s), "
            f"{self.candidates_checked} candidates checked)"
        )


def _full_state_space(context, all_states):
    if all_states is not None:
        return list(all_states)
    spec = getattr(context, "spec", None)
    if spec is None:
        raise InterpretationError(
            "exhaustive search needs the full global state space: pass all_states= "
            "or use a variable-based context"
        )
    return list(spec.state_space.states())


def enumerate_implementations(
    program,
    context,
    all_states=None,
    max_free_states=16,
    require_local=True,
    max_states=100000,
):
    """Enumerate all (behaviourally distinct) implementations of ``program``.

    Parameters
    ----------
    all_states:
        The full global state space; defaults to the state space of a
        variable-based context.
    max_free_states:
        Upper bound on the number of non-initial states (the search is
        exponential in this number); exceeding it raises
        :class:`InterpretationError`.

    Returns
    -------
    ImplementationSearchResult
    """
    states = _full_state_space(context, all_states)
    initial = list(dict.fromkeys(context.initial_states))
    initial_set = frozenset(initial)
    free = [state for state in states if state not in initial_set]
    if len(free) > max_free_states:
        raise InterpretationError(
            f"search space too large: {len(free)} non-initial states "
            f"(limit {max_free_states}); raise max_free_states to force the search"
        )

    implementations = []
    seen_reachable_sets = set()
    candidates_checked = 0
    for size in range(len(free) + 1):
        for extra in combinations(free, size):
            candidates_checked += 1
            candidate = initial_set | frozenset(extra)
            view = StateSetView(context, sorted(candidate, key=stable_sort_key))
            try:
                protocol = derive_protocol(program, view, require_local=require_local)
            except InterpretationError:
                # A guard is not local over this candidate set; such a
                # candidate cannot be the reachable set of an implementation
                # of a well-formed knowledge-based program.
                continue
            system = represent(context, protocol, max_states=max_states)
            reachable = frozenset(system.states)
            if reachable != candidate:
                continue
            if reachable in seen_reachable_sets:
                continue
            seen_reachable_sets.add(reachable)
            implementations.append((protocol, system))
    return ImplementationSearchResult(implementations, candidates_checked)


def classify_program(program, context, **kwargs):
    """Return ``"contradictory"``, ``"unique"`` or ``"multiple"`` for the
    program in the context (see :func:`enumerate_implementations`)."""
    return enumerate_implementations(program, context, **kwargs).classification
