"""The variable-setting family: knowledge-based programs with zero, one or
several implementations.

A single "blind" agent ``a`` (it observes nothing) manipulates a variable
``x`` ranging over ``0..3``, starting from ``x = 0``.  Because the agent's
knowledge is exactly "which values of ``x`` are reachable", these tiny
programs isolate the non-monotone interaction between guard evaluation and
reachability that makes knowledge-based programs subtle:

* :func:`cyclic_program` — ``if K_a x!=2 -> x:=1 [] K_a x!=1 -> x:=2`` has
  *two* implementations (reachable sets ``{0,1}`` and ``{0,2}``), and plain
  iteration of the interpretation functional oscillates with period 2;
* :func:`cycle_breaking_program` — adding an unconditional branch
  ``true -> x:=3`` (and retargeting) yields a *unique* implementation that
  iteration reaches after a few steps;
* :func:`contradictory_program` — ``if K_a x!=1 -> x:=1`` has *no*
  implementation (setting the value is justified exactly when it is not
  performed);
* :func:`self_fulfilling_program` — ``if M_a x=1 -> x:=1`` has two
  implementations (``{0}`` and ``{0,1}``): reaching ``x=1`` is justified
  only by itself;
* :func:`speculative_program` — the combination whose *unique*
  implementation cannot be found by iteration from either seed and requires
  the exhaustive search.

The context and the whole program family are specified declaratively in
``repro/spec/specs/variable_setting.kbp`` (one named ``program`` block per
family member); this module is a thin wrapper over the spec.
"""

from repro.spec import load_spec

AGENT = "a"

SPEC_NAME = "variable_setting"


def spec():
    """The parsed :class:`~repro.spec.ProtocolSpec` of the family."""
    return load_spec(SPEC_NAME)


def context_parts():
    """The context ingredients, shared by the explicit and symbolic paths."""
    return spec().context_parts()


def context():
    """The shared context: blind agent ``a``, ``x in 0..3``, initially 0,
    actions ``set1``, ``set2``, ``set3`` writing the corresponding value."""
    return spec().variable_context()


def symbolic_model(**kwargs):
    """The enumeration-free compiled form of the same context."""
    return spec().symbolic_model(**kwargs)


def program(name="cyclic"):
    """The named family member's knowledge-based program (the zoo's shared
    accessor; see :data:`PROGRAM_FAMILY` for the names)."""
    return spec().program(name)


def cyclic_program():
    """Two implementations; iteration oscillates (the paper's Exercise 7.5
    style example)."""
    return spec().program("cyclic")


def cycle_breaking_program():
    """Unique implementation, reached constructively: the unconditional
    branch forces ``x=1`` to be reachable, which settles both knowledge
    guards."""
    return spec().program("cycle_breaking")


def contradictory_program():
    """No implementation: ``x:=1`` is performed exactly when ``x=1`` is not
    reachable."""
    return spec().program("contradictory")


def self_fulfilling_program():
    """Two implementations: ``x:=1`` is performed exactly when ``x=1`` is
    reachable, so both "never" and "always" are consistent."""
    return spec().program("self_fulfilling")


def speculative_program():
    """Unique implementation (reachable set ``{0, 1}``) that iteration
    misses: finding it requires ruling out the alternative ``{0, 2}`` because
    that one would trigger the contradictory third branch."""
    return spec().program("speculative")


PROGRAM_FAMILY = {
    "cyclic": (cyclic_program, "multiple"),
    "cycle_breaking": (cycle_breaking_program, "unique"),
    "contradictory": (contradictory_program, "contradictory"),
    "self_fulfilling": (self_fulfilling_program, "multiple"),
    "speculative": (speculative_program, "unique"),
}
"""Mapping ``name -> (program factory, expected classification)``."""


def expected_reachable_values(name):
    """Return the expected reachable ``x``-value sets of each implementation
    of the named family member (a list of frozensets), for use in tests and
    EXPERIMENTS.md."""
    table = {
        "cyclic": [frozenset({0, 1}), frozenset({0, 2})],
        "cycle_breaking": [frozenset({0, 1, 2})],
        "contradictory": [],
        "self_fulfilling": [frozenset({0}), frozenset({0, 1})],
        "speculative": [frozenset({0, 1})],
    }
    return table[name]
