"""Canonical knowledge-based protocols from the paper and its companion book.

Each module builds the context and the knowledge-based program of one of the
paper's worked examples and exposes the formulas needed to check the claimed
properties:

* :mod:`repro.protocols.bit_transmission` — sender/receiver over lossy
  channels; the knowledge-based program with guards ``!K_S K_R(bit)`` and
  ``K_R(bit) & !K_R K_S K_R(bit)`` (unique implementation; provides
  witnesses, not synchronous);
* :mod:`repro.protocols.variable_setting` — the family of one-agent
  micro-programs exhibiting zero, one and several implementations;
* :mod:`repro.protocols.muddy_children` — the classic puzzle as a
  synchronous knowledge-based program (with ``k`` muddy children, the muddy
  ones announce in round ``k``);
* :mod:`repro.protocols.sequence_transmission` — transmitting a bit string
  over lossy channels: the knowledge-based specification and the
  alternating-bit protocol as its standard implementation;
* :mod:`repro.protocols.unexpected_examination` — the surprise-examination
  puzzle as a knowledge-based program;
* :mod:`repro.protocols.dining_cryptographers` — anonymous announcement
  protocol, used as an additional knowledge-checking workload.
"""

from repro.protocols import (
    bit_transmission,
    dining_cryptographers,
    muddy_children,
    sequence_transmission,
    unexpected_examination,
    variable_setting,
)

__all__ = [
    "bit_transmission",
    "dining_cryptographers",
    "muddy_children",
    "sequence_transmission",
    "unexpected_examination",
    "variable_setting",
]
