"""Canonical knowledge-based protocols from the paper and its companion book.

Every member of the zoo is specified declaratively as a ``.kbp`` file under
``repro/spec/specs/`` and wrapped by a thin module here; the modules share
a convention:

* ``spec(**params)`` — the parsed :class:`~repro.spec.ProtocolSpec`;
* ``context_parts()`` — the context ingredients as a dict, shared verbatim
  by the explicit and symbolic paths;
* ``context()`` — the explicit :class:`~repro.modeling.VariableContext`;
* ``symbolic_model()`` — the enumeration-free
  :class:`~repro.modeling.symbolic_model.SymbolicContextModel`;
* ``program()`` — the knowledge-based program(s) of the spec;

plus the formulas of the properties checked in EXPERIMENTS.md.  The zoo:

* :mod:`repro.protocols.bit_transmission` — sender/receiver over lossy
  channels; the knowledge-based program with guards ``!K_S K_R(bit)`` and
  ``K_R(bit) & !K_R K_S K_R(bit)`` (unique implementation; provides
  witnesses, not synchronous);
* :mod:`repro.protocols.variable_setting` — the family of one-agent
  micro-programs exhibiting zero, one and several implementations;
* :mod:`repro.protocols.muddy_children` — the classic puzzle as a
  synchronous knowledge-based program (with ``k`` muddy children, the muddy
  ones announce in round ``k``);
* :mod:`repro.protocols.sequence_transmission` — transmitting a bit string
  over lossy channels: the knowledge-based specification and the
  alternating-bit protocol as its standard implementation;
* :mod:`repro.protocols.unexpected_examination` — the surprise-examination
  puzzle as a knowledge-based program;
* :mod:`repro.protocols.dining_cryptographers` — anonymous announcement
  protocol, used as an additional knowledge-checking workload;
* :mod:`repro.protocols.coordinated_attack` — the Halpern–Moses chain of
  generals over lossy messengers (spec-only; symbolic workload);
* :mod:`repro.protocols.leader_election` — election on a synchronous
  unidirectional ring from a single knowledge guard (spec-only; symbolic
  workload).
"""

from collections import namedtuple

from repro.protocols import (
    bit_transmission,
    coordinated_attack,
    dining_cryptographers,
    leader_election,
    muddy_children,
    sequence_transmission,
    unexpected_examination,
    variable_setting,
)

#: One zoo entry: the wrapper module, the bundled ``.kbp`` spec it loads,
#: the names of its tunable spec parameters, and a one-line summary.
RegisteredProtocol = namedtuple(
    "RegisteredProtocol", ("name", "module", "spec_name", "parameters", "summary")
)


def registered_protocols():
    """The protocol zoo as an ordered ``name -> RegisteredProtocol`` dict.

    Every entry's module follows the shared convention above, so generic
    tooling (the ``python -m repro.spec`` CLI, the benchmark drivers, the
    differential tests) can iterate the zoo without special cases.
    """
    entries = [
        RegisteredProtocol(
            "bit_transmission",
            bit_transmission,
            bit_transmission.SPEC_NAME,
            (),
            "sender/receiver bit over lossy channels (paper's running example)",
        ),
        RegisteredProtocol(
            "variable_setting",
            variable_setting,
            variable_setting.SPEC_NAME,
            (),
            "one-agent micro-programs with zero, one and several implementations",
        ),
        RegisteredProtocol(
            "muddy_children",
            muddy_children,
            muddy_children.SPEC_NAME,
            ("n", "max_round"),
            "the muddy-children puzzle as a synchronous program",
        ),
        RegisteredProtocol(
            "sequence_transmission",
            sequence_transmission,
            sequence_transmission.SPEC_NAME,
            ("length",),
            "bit-string transmission over lossy channels",
        ),
        RegisteredProtocol(
            "unexpected_examination",
            unexpected_examination,
            unexpected_examination.SPEC_NAME,
            ("num_days",),
            "the surprise-examination puzzle",
        ),
        RegisteredProtocol(
            "dining_cryptographers",
            dining_cryptographers,
            dining_cryptographers.SPEC_NAME,
            ("n",),
            "anonymous announcement on a ring of cryptographers",
        ),
        RegisteredProtocol(
            "coordinated_attack",
            coordinated_attack,
            coordinated_attack.SPEC_NAME,
            ("n",),
            "chain of generals over lossy messengers (impossibility)",
        ),
        RegisteredProtocol(
            "leader_election",
            leader_election,
            leader_election.SPEC_NAME,
            ("n", "max_round"),
            "election on a synchronous ring from one knowledge guard",
        ),
    ]
    return {entry.name: entry for entry in entries}


__all__ = [
    "RegisteredProtocol",
    "bit_transmission",
    "coordinated_attack",
    "dining_cryptographers",
    "leader_election",
    "muddy_children",
    "registered_protocols",
    "sequence_transmission",
    "unexpected_examination",
    "variable_setting",
]
