"""Coordinated attack over lossy messengers, as a knowledge-based program.

``n`` generals are camped along a chain; general ``i`` is privately ready
(or not) and relays "divisions 0..i are all ready" to general ``i+1`` via a
messenger that may be captured (the ``relay_fail`` actions share the
``relay_ok`` guards but have no effect).  Each general runs the declarative
clause::

    do  K_i all_ready  ->  attacked_i := true  od

The classical impossibility (Halpern–Moses) shows up epistemically in the
implementation: ``word{i} => ready0 & .. & ready{i-1}`` holds in every
reachable state, so only the *last* general in the chain can ever know
``all_ready`` — it attacks alone, and coordination (common knowledge of
``all_ready``) is unattainable over lossy channels.

The protocol is specified declaratively in
``repro/spec/specs/coordinated_attack.kbp`` (parameter ``n``); this module
wraps the spec on the zoo's shared ``context_parts()``/``symbolic_model()``
convention.  The chain is a symbolic workload: at ``n`` generals the state
space has ``2^(3n-1)`` states, so beyond ``n ~ 7`` only the BDD-backed path
is practical — see :func:`solve_symbolic`.
"""

from repro.logic.formula import Implies, Not, Prop, conj
from repro.spec import load_spec

N_GENERALS = 4

SPEC_NAME = "coordinated_attack"


def spec(n=N_GENERALS):
    """The parsed :class:`~repro.spec.ProtocolSpec` of the protocol."""
    return load_spec(SPEC_NAME, n=n)


def general(i):
    """The name of general ``i``."""
    return f"gen{i}"


def all_ready_formula(n=N_GENERALS):
    """``ready0 & ... & ready{n-1}``: every division is ready to attack."""
    return conj([Prop(f"ready{i}") for i in range(n)])


def word_invariant(n=N_GENERALS):
    """The chain invariant: ``word{i}`` implies divisions ``0..i-1`` are all
    ready (general ``i`` only hears the word after the chain before it
    relayed truthfully)."""
    return conj(
        [
            Implies(Prop(f"word{i}"), conj([Prop(f"ready{j}") for j in range(i)]))
            for i in range(1, n)
        ]
    )


def lone_attacker_formula(n=N_GENERALS):
    """Only the last general ever attacks: ``!attacked{i}`` for ``i < n-1``."""
    return conj([Not(Prop(f"attacked{i}")) for i in range(n - 1)])


def attack_requires_all_ready(n=N_GENERALS):
    """An attack happens only when everyone really is ready."""
    return Implies(Prop(f"attacked{n - 1}"), all_ready_formula(n))


def context_parts(n=N_GENERALS):
    """The context ingredients, shared by the explicit and symbolic paths."""
    return spec(n).context_parts()


def context(n=N_GENERALS):
    """Build the coordinated-attack context (explicit enumeration — only
    viable for small ``n``)."""
    return spec(n).variable_context()


def symbolic_model(n=N_GENERALS, **kwargs):
    """The enumeration-free compiled form of the same context."""
    return spec(n).symbolic_model(**kwargs)


def program(n=N_GENERALS):
    """The generals' joint knowledge-based program."""
    return spec(n).program()


def solve(n=N_GENERALS, method="iterate"):
    """Interpret the program explicitly and return the
    :class:`repro.interpretation.iteration.IterationResult`."""
    from repro.interpretation import construct_by_rounds, iterate_interpretation

    ctx = context(n)
    prog = program(n).check_against_context(ctx)
    if method == "iterate":
        return iterate_interpretation(prog, ctx)
    if method == "rounds":
        return construct_by_rounds(prog, ctx)
    raise ValueError(f"unknown method {method!r}")


def solve_symbolic(n=N_GENERALS, **kwargs):
    """Interpret the program on BDDs — the only practical path at chain
    lengths whose state space (``2^(3n-1)``) defeats enumeration."""
    from repro.interpretation import construct_by_rounds_symbolic

    model = symbolic_model(n, **kwargs)
    return construct_by_rounds_symbolic(program(n), model)


def impossibility_holds(system, n=N_GENERALS):
    """Check the impossibility reading on a constructed system (explicit or
    symbolic): the chain invariant holds everywhere, nobody but the last
    general ever attacks, and an attack implies everyone was ready."""
    return (
        system.holds_everywhere(word_invariant(n))
        and system.holds_everywhere(lone_attacker_formula(n))
        and system.holds_everywhere(attack_requires_all_ready(n))
    )
