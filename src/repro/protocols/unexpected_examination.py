"""The unexpected (surprise) examination as a knowledge-based program.

A class ``P`` is told that there will be an exam on one of the days
``0..4`` next week and that it will be a surprise: on the morning of the exam
the class will not know that the exam is that day.  The teacher ``T`` (who
knows the exam day) holds the exam only if it is still a surprise::

    do  day < 5  &  !written  &  K_T (day = exam  &  !K_P day = exam)
            ->  written := true
    od

with the day advanced by the environment every round.  The class observes
the day and whether the exam has been written, the teacher observes
everything.  The context is synchronous (the day is the round), so the
program has a unique implementation.

The protocol is specified declaratively in
``repro/spec/specs/unexpected_examination.kbp`` (parameter ``num_days``);
this module wraps the spec and follows the zoo's shared
``context_parts()``/``symbolic_model()`` convention.

The classical resolution reproduced in EXPERIMENTS.md: the exam *can* be held
as a surprise on any of the days ``0..3`` (in particular mid-week), but not
on the last day — if the exam is scheduled for day 4 it is never written,
because on the morning of day 4 the class would know.
"""

from repro.logic.formula import Knows, Not, Prop, disj
from repro.spec import load_spec

TEACHER = "T"
CLASS = "P"

NUM_DAYS = 5

SPEC_NAME = "unexpected_examination"


def spec(num_days=NUM_DAYS):
    """The parsed :class:`~repro.spec.ProtocolSpec` of the protocol."""
    return load_spec(SPEC_NAME, num_days=num_days)


def exam_today_formula(num_days=NUM_DAYS):
    """The proposition "today is the exam day" (``day = exam``), expressed
    over the ``day=d`` / ``exam=d`` atoms."""
    return disj(
        [Prop(f"day={d}") & Prop(f"exam={d}") for d in range(num_days)]
    )


def class_knows_exam_today(num_days=NUM_DAYS):
    """``K_P (day = exam)``."""
    return Knows(CLASS, exam_today_formula(num_days))


def surprise_possible_guard(num_days=NUM_DAYS):
    """The teacher's guard: the exam day has come, the exam has not been
    written, and the class does not know that today is the day."""
    day_not_over = disj([Prop(f"day={d}") for d in range(num_days)])
    return (
        day_not_over
        & Not(Prop("written"))
        & Knows(TEACHER, exam_today_formula(num_days) & Not(class_knows_exam_today(num_days)))
    )


def context_parts(num_days=NUM_DAYS):
    """The context ingredients, shared by the explicit and symbolic paths."""
    return spec(num_days).context_parts()


def context(num_days=NUM_DAYS):
    """Build the surprise-examination context.

    Variables: ``day`` (0..num_days, saturating), ``exam`` (0..num_days-1,
    static) and ``written``.  The class observes ``day`` and ``written``; the
    teacher observes everything.
    """
    return spec(num_days).variable_context()


def symbolic_model(num_days=NUM_DAYS, **kwargs):
    """The enumeration-free compiled form of the same context."""
    return spec(num_days).symbolic_model(**kwargs)


def program(num_days=NUM_DAYS):
    """The teacher's knowledge-based program (the class only observes)."""
    return spec(num_days).program()


def solve(num_days=NUM_DAYS, method="rounds"):
    """Interpret the program and return the resulting iteration result."""
    from repro.interpretation import construct_by_rounds, iterate_interpretation

    ctx = context(num_days)
    prog = program(num_days).check_against_context(ctx)
    if method == "rounds":
        return construct_by_rounds(prog, ctx)
    if method == "iterate":
        return iterate_interpretation(prog, ctx)
    raise ValueError(f"unknown method {method!r}")


def exam_written_on_day(system, exam_day):
    """Return ``True`` if, in the implementation, the exam scheduled for
    ``exam_day`` is eventually written (as a surprise)."""
    from repro.temporal import EF, CTLKModelChecker

    checker = CTLKModelChecker(system)
    target = Prop("written") & Prop(f"exam={exam_day}")
    # Reachability of `written` restricted to the runs whose exam day is
    # ``exam_day``: since ``exam`` is static, it suffices to ask whether a
    # state with that exam day and ``written`` is reachable at all.
    return checker.reachable(target)


def surprise_holds_when_written(system):
    """Check that whenever the exam is written, the class did not know on
    that morning: every reachable state reached by a ``hold_exam`` step
    satisfies "the class did not know the exam was today" in its
    predecessor."""
    transition_system = system.transition_system
    knows_today = system.extension(class_knows_exam_today())
    for source, joint_action, target in transition_system.transitions:
        if joint_action.action_of(TEACHER) == "hold_exam" and not source["written"]:
            if target["written"] and source in knows_today:
                return False
    return True
