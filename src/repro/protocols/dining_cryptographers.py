"""The dining cryptographers: anonymous announcement checked epistemically.

``n`` cryptographers (n >= 3) have dined together; either one of them or
their employer (the NSA) has paid.  They want to learn *whether one of them
paid* without revealing *who*.  Each adjacent pair shares a secret fair coin;
every cryptographer announces the exclusive-or of the two coins it sees,
flipped if it paid itself.  The exclusive-or of all announcements is odd
exactly when a cryptographer paid.

This is a one-round protocol with standard (non-epistemic) actions; its
interest for this library is purely epistemic and it serves as an additional
knowledge-checking workload (experiment E9):

* after the announcements, every non-paying cryptographer knows whether a
  cryptographer paid;
* if a cryptographer paid, no *other* cryptographer knows who it was
  (anonymity), yet "someone paid" is common knowledge.
"""

from repro.logic.formula import CommonKnows, Knows, Not, Prop, disj
from repro.programs import StandardAgentProgram, StandardProgram
from repro.spec import load_spec
from repro.systems import represent

SPEC_NAME = "dining_cryptographers"


def spec(n=3):
    """The parsed :class:`~repro.spec.ProtocolSpec` for ``n`` cryptographers."""
    if n < 3:
        raise ValueError("the protocol needs at least three cryptographers")
    return load_spec(SPEC_NAME, n=n)


def crypto(i):
    """The agent name of cryptographer ``i`` (0-based)."""
    return f"crypto{i}"


def paid_prop(i):
    """The proposition "cryptographer ``i`` paid"."""
    return Prop(f"paid{i}")


def someone_paid_formula(n):
    """The proposition "one of the cryptographers paid"."""
    return disj([paid_prop(i) for i in range(n)])


def context_parts(n=3):
    """The ingredients of the dining-cryptographers context, as the keyword
    arguments of :func:`repro.systems.variable_context.variable_context`.

    Shared by :func:`context` (the explicit pipeline) and
    :func:`symbolic_model` (the enumeration-free one), so both construct
    from literally the same specification
    (``repro/spec/specs/dining_cryptographers.kbp``).
    """
    return spec(n).context_parts()


def context(n=3):
    """Build the dining-cryptographers context for ``n`` cryptographers.

    Variables: ``paid_i`` (static, at most one true; all false means the NSA
    paid), one shared coin per adjacent pair (``coin_i`` is shared between
    cryptographers ``i`` and ``(i+1) % n``), one announcement bit ``say_i``
    per cryptographer and a ``done`` flag.  Cryptographer ``i`` observes its
    two coins, whether it paid itself, all announcements and ``done``.
    """
    return spec(n).variable_context()


def ring_variable_order(n):
    """A good BDD variable order for the ring: ``done`` on top, then per
    position ``paid_i``, ``coin_i``, ``say_i`` interleaved around the ring.
    Each announcement is the XOR of its two adjacent coins and the local
    ``paid`` bit, so keeping each position's variables together keeps every
    cut of the diagram local to one ring segment."""
    order = ["done"]
    for i in range(n):
        order += [f"paid{i}", f"coin{i}", f"say{i}"]
    return order


def blocked_variable_order(n):
    """A deliberately adversarial order: all ``say`` bits first, then all
    ``paid`` bits, then all ``coin`` bits, with ``done`` at the bottom.
    Every ``say_i`` now sits above both coins it depends on, so the diagram
    must carry the whole announcement pattern across the ``paid`` block —
    the workload the dynamic-reordering benchmark recovers from."""
    order = [f"say{i}" for i in range(n)]
    order += [f"paid{i}" for i in range(n)]
    order += [f"coin{i}" for i in range(n)]
    order.append("done")
    return order


def symbolic_model(n=3, variable_order=None):
    """The enumeration-free compiled form of the same context — a
    :class:`repro.symbolic.model.SymbolicContextModel` built from the spec
    without enumerating a single state.

    ``variable_order`` defaults to the spec's declared ``order`` hint
    (:func:`ring_variable_order`); pass :func:`blocked_variable_order` (or
    any other order) to study how the declared order shapes the diagrams,
    e.g. as the adversarial starting point of the dynamic-reordering
    benchmark.
    """
    return spec(n).symbolic_model(variable_order=variable_order)


def program(n=3):
    """The one-round program as a (trivially) knowledge-based program:
    every cryptographer announces while the protocol is not ``done``, then
    idles.  The guard is propositional — the interest is downstream, in the
    epistemic and temporal-epistemic properties of the generated system —
    but this form runs through both interpretation pipelines, explicit and
    symbolic."""
    return spec(n).program()


def protocol_program(n=3):
    """The standard one-round program: every cryptographer announces while
    the protocol is not ``done``."""

    def not_done(local_state):
        return not dict(local_state)["done"]

    programs = [
        StandardAgentProgram(crypto(i), [(not_done, "announce")]) for i in range(n)
    ]
    return StandardProgram(programs)


def system(n=3, max_states=200000):
    """Generate the interpreted system of the protocol (one announcement
    round followed by idling)."""
    ctx = context(n)
    protocol = protocol_program(n).to_joint_protocol(ctx)
    return represent(ctx, protocol, max_states=max_states)


def anonymity_holds(sys, n=3):
    """Check anonymity: in every reachable post-announcement state in which
    cryptographer ``i`` paid, no other cryptographer ``j`` knows that ``i``
    paid."""
    done = sys.extension(Prop("done"))
    for i in range(n):
        paid_i_states = sys.extension(paid_prop(i)) & done
        for j in range(n):
            if i == j:
                continue
            knows_who = sys.extension(Knows(crypto(j), paid_prop(i)))
            if paid_i_states & knows_who:
                return False
    return True


def everyone_learns_whether_paid(sys, n=3):
    """Check that after the announcements every non-paying cryptographer
    knows whether one of the cryptographers paid."""
    done = sys.extension(Prop("done"))
    someone = someone_paid_formula(n)
    for j in range(n):
        knows_someone = sys.extension(Knows(crypto(j), someone))
        knows_nobody = sys.extension(Knows(crypto(j), Not(someone)))
        for state in done:
            if state[f"paid{j}"]:
                continue
            if state not in knows_someone and state not in knows_nobody:
                return False
    return True


def someone_paid_is_common_knowledge(sys, n=3):
    """When a cryptographer paid, "someone paid" is common knowledge among
    all of them after the announcements."""
    group = tuple(crypto(i) for i in range(n))
    someone = someone_paid_formula(n)
    common = sys.extension(CommonKnows(group, someone))
    done = sys.extension(Prop("done"))
    paid_states = sys.extension(someone)
    return all(state in common for state in done & paid_states)
