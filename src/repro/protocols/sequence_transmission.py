"""The sequence-transmission problem and the alternating-bit protocol.

A sender ``S`` must transmit a finite bit string to a receiver ``R`` over
channels that may lose messages in either direction.  This module contains
three models, mirroring the development in the paper's companion book
(ch. 7).  The first two are built directly on the generic
:class:`repro.systems.context.Context` API; the third (:func:`spec`,
:func:`context_parts`, :func:`symbolic_model`) is the declarative variable
model from ``repro/spec/specs/sequence_transmission.kbp``, which follows
the zoo's shared convention and also runs enumeration-free:

1. **The knowledge-based specification** (:func:`kb_context`,
   :func:`kb_program`): the sender keeps transmitting bit ``i`` as long as it
   does not *know* that the receiver has it, and moves on as soon as it does;
   the receiver keeps acknowledging its progress as long as it does not know
   that the sender knows.  The global state abstracts the channels into
   direct-delivery-or-loss per round and tracks only the sequence, how many
   bits the receiver has (``nrcvd``) and the highest acknowledgement the
   sender has received (``sacked``).  The program's implementation (computed
   by the fixed-point machinery) sends bit ``i`` exactly while ``sacked = i``
   — i.e. the sequential-numbering behaviour that the alternating-bit
   protocol realises with a single parity bit.

2. **The alternating-bit protocol itself** (:func:`abp_context`,
   :func:`abp_protocol`): an explicit standard protocol with one-bit parities
   on messages and acknowledgements, over the same lossy-delivery
   environment.  Its safety property — the received string is always a
   prefix of the sent string — and the knowledge property that receiving a
   matching acknowledgement *implies the sender knows* the receiver has the
   bit are checked in the tests and benchmarks.
"""

from collections import namedtuple
from itertools import product as _product

from repro.logic.formula import Knows, Not, Prop, conj
from repro.programs import AgentProgram, Clause, KnowledgeBasedProgram
from repro.systems import Context, JointProtocol, Protocol
from repro.systems.actions import NOOP_NAME

SENDER = "S"
RECEIVER = "R"

#: Environment actions: whether the data message and the acknowledgement sent
#: in this round are delivered or lost.
ENV_ACTIONS = tuple(
    (data, ack) for data in ("data_ok", "data_lost") for ack in ("ack_ok", "ack_lost")
)


# ---------------------------------------------------------------------------
# Knowledge-based specification
# ---------------------------------------------------------------------------

KBState = namedtuple("KBState", ["seq", "nrcvd", "sacked"])
"""Global state of the knowledge-based model: the (static) bit string, the
number of bits the receiver holds and the highest count acknowledged to the
sender.  Invariant: ``sacked <= nrcvd <= len(seq)``."""


def r_has(i):
    """Proposition: the receiver has received bit ``i`` (0-based)."""
    return Prop(f"r_has_{i}")


def send_action(i):
    return f"send_{i}"


def ack_action(j):
    return f"ack_{j}"


def _kb_labelling(state):
    labels = set()
    for i in range(state.nrcvd):
        labels.add(f"r_has_{i}")
    for i, bit in enumerate(state.seq):
        if bit:
            labels.add(f"seq_{i}")
    labels.add(f"nrcvd={state.nrcvd}")
    labels.add(f"sacked={state.sacked}")
    if state.nrcvd == len(state.seq):
        labels.add("all_received")
    if state.sacked == len(state.seq):
        labels.add("all_acknowledged")
    return labels


def _kb_local_state(agent, state):
    if agent == SENDER:
        # The sender knows the sequence and what has been acknowledged.
        return ("S", state.seq, state.sacked)
    if agent == RECEIVER:
        # The receiver knows exactly the prefix it has received.
        return ("R", state.seq[: state.nrcvd])
    raise ValueError(f"unknown agent {agent!r}")


def _kb_transition(state, joint_action):
    data_status, ack_status = joint_action.env
    sender_act = joint_action.action_of(SENDER)
    receiver_act = joint_action.action_of(RECEIVER)
    nrcvd = state.nrcvd
    sacked = state.sacked
    length = len(state.seq)
    if (
        data_status == "data_ok"
        and sender_act.startswith("send_")
        and int(sender_act.split("_")[1]) == state.nrcvd
        and state.nrcvd < length
    ):
        nrcvd = state.nrcvd + 1
    if (
        ack_status == "ack_ok"
        and receiver_act.startswith("ack_")
        and int(receiver_act.split("_")[1]) > state.sacked
        and int(receiver_act.split("_")[1]) <= state.nrcvd
    ):
        sacked = int(receiver_act.split("_")[1])
    return KBState(state.seq, nrcvd, sacked)


def kb_context(length):
    """The knowledge-based sequence-transmission context for bit strings of
    the given ``length`` (all ``2^length`` strings are initial states)."""
    if length < 1:
        raise ValueError("the sequence must have at least one bit")
    initial_states = [
        KBState(tuple(bits), 0, 0) for bits in _product((False, True), repeat=length)
    ]
    sender_actions = tuple(send_action(i) for i in range(length)) + (NOOP_NAME,)
    receiver_actions = tuple(ack_action(j) for j in range(1, length + 1)) + (NOOP_NAME,)
    return Context(
        name=f"sequence-transmission-kb-{length}",
        agents=(SENDER, RECEIVER),
        initial_states=initial_states,
        transition=_kb_transition,
        local_state=_kb_local_state,
        labelling=_kb_labelling,
        agent_actions={SENDER: sender_actions, RECEIVER: receiver_actions},
        env_actions=lambda state: ENV_ACTIONS,
    )


def kb_program(length):
    """The knowledge-based program: the sender transmits bit ``i`` while it
    does not know the receiver has it (and knows it has all earlier bits);
    the receiver acknowledges ``j`` received bits while it does not know that
    the sender knows about the last of them."""
    sender_clauses = []
    for i in range(length):
        guard = Not(Knows(SENDER, r_has(i)))
        if i > 0:
            guard = Knows(SENDER, r_has(i - 1)) & guard
        sender_clauses.append(Clause(guard, send_action(i)))
    receiver_clauses = []
    for j in range(1, length + 1):
        guard = Prop(f"nrcvd={j}") & Not(Knows(RECEIVER, Knows(SENDER, r_has(j - 1))))
        receiver_clauses.append(Clause(guard, ack_action(j)))
    return KnowledgeBasedProgram(
        [
            AgentProgram(SENDER, sender_clauses),
            AgentProgram(RECEIVER, receiver_clauses),
        ]
    )


def all_received_formula(length):
    """``r_has_0 & ... & r_has_{length-1}``."""
    return conj([r_has(i) for i in range(length)])


def solve_kb(length, method="iterate"):
    """Interpret the knowledge-based specification and return the
    :class:`repro.interpretation.iteration.IterationResult`."""
    from repro.interpretation import construct_by_rounds, iterate_interpretation

    context = kb_context(length)
    program = kb_program(length).check_against_context(context)
    if method == "iterate":
        return iterate_interpretation(program, context)
    if method == "rounds":
        return construct_by_rounds(program, context)
    raise ValueError(f"unknown method {method!r}")


# ---------------------------------------------------------------------------
# The alternating-bit protocol (standard implementation with parity bits)
# ---------------------------------------------------------------------------

ABPState = namedtuple(
    "ABPState", ["seq", "sptr", "rcvd", "data_chan", "ack_chan"]
)
"""Global state of the alternating-bit model.

``sptr`` is the index of the bit the sender is currently transmitting,
``rcvd`` the tuple of bits the receiver has accepted, ``data_chan`` either
``None`` or a ``(bit, parity)`` message in transit, ``ack_chan`` either
``None`` or a parity in transit.
"""


def _abp_labelling(state):
    labels = set()
    for i, bit in enumerate(state.seq):
        if bit:
            labels.add(f"seq_{i}")
    for i, bit in enumerate(state.rcvd):
        labels.add(f"r_has_{i}")
        if bit:
            labels.add(f"rbit_{i}")
    labels.add(f"sptr={state.sptr}")
    labels.add(f"nrcvd={len(state.rcvd)}")
    if state.rcvd == state.seq[: len(state.rcvd)]:
        labels.add("prefix_ok")
    if len(state.rcvd) == len(state.seq):
        labels.add("all_received")
    return labels


def _abp_local_state(agent, state):
    if agent == SENDER:
        return ("S", state.seq, state.sptr, state.ack_chan)
    if agent == RECEIVER:
        return ("R", state.rcvd, state.data_chan)
    raise ValueError(f"unknown agent {agent!r}")


def _abp_transition(state, joint_action):
    data_status, ack_status = joint_action.env
    sender_act = joint_action.action_of(SENDER)
    receiver_act = joint_action.action_of(RECEIVER)
    seq = state.seq
    length = len(seq)

    sptr = state.sptr
    rcvd = state.rcvd
    # 1. The sender processes a pending acknowledgement and emits a message.
    if state.ack_chan is not None and state.ack_chan == sptr % 2 and sptr < length:
        sptr = sptr + 1
    data_out = None
    if sender_act == "transmit" and sptr < length:
        data_out = (seq[sptr], sptr % 2)
    # 2. The receiver processes a pending data message and emits an ack.
    ack_out = None
    if state.data_chan is not None:
        bit, parity = state.data_chan
        if parity == len(rcvd) % 2 and len(rcvd) < length:
            rcvd = rcvd + (bit,)
        # The acknowledgement always carries the parity of the last accepted
        # bit (or nothing if no bit has been accepted yet).
        if receiver_act == "acknowledge" and rcvd:
            ack_out = (len(rcvd) - 1) % 2
    elif receiver_act == "acknowledge" and rcvd:
        ack_out = (len(rcvd) - 1) % 2
    # 3. The environment decides which of the emitted messages are delivered.
    data_chan = data_out if data_status == "data_ok" else None
    ack_chan = ack_out if ack_status == "ack_ok" else None
    return ABPState(seq, sptr, rcvd, data_chan, ack_chan)


def abp_context(length):
    """The alternating-bit context for bit strings of the given length."""
    if length < 1:
        raise ValueError("the sequence must have at least one bit")
    initial_states = [
        ABPState(tuple(bits), 0, (), None, None)
        for bits in _product((False, True), repeat=length)
    ]
    return Context(
        name=f"alternating-bit-{length}",
        agents=(SENDER, RECEIVER),
        initial_states=initial_states,
        transition=_abp_transition,
        local_state=_abp_local_state,
        labelling=_abp_labelling,
        agent_actions={
            SENDER: ("transmit", NOOP_NAME),
            RECEIVER: ("acknowledge", NOOP_NAME),
        },
        env_actions=lambda state: ENV_ACTIONS,
    )


def abp_protocol():
    """The alternating-bit protocol as a standard joint protocol: the sender
    always transmits (until done), the receiver always acknowledges."""

    def sender_actions(local_state):
        _, seq, sptr, _ = local_state
        if sptr < len(seq):
            return frozenset({"transmit"})
        return frozenset({NOOP_NAME})

    def receiver_actions(local_state):
        _, rcvd, _ = local_state
        if rcvd:
            return frozenset({"acknowledge"})
        return frozenset({NOOP_NAME})

    return JointProtocol(
        {
            SENDER: Protocol(SENDER, sender_actions),
            RECEIVER: Protocol(RECEIVER, receiver_actions),
        }
    )


def abp_system(length, max_states=200000):
    """Generate the interpreted system of the alternating-bit protocol."""
    from repro.systems import represent

    return represent(abp_context(length), abp_protocol(), max_states=max_states)


def prefix_ok_formula():
    """Safety: the received string is a prefix of the sent string."""
    return Prop("prefix_ok")


def sender_knows_received(i):
    """``K_S r_has_i`` — the sender knows the receiver holds bit ``i``."""
    return Knows(SENDER, r_has(i))


# ---------------------------------------------------------------------------
# The variable-model spec (the zoo's shared context_parts() convention)
# ---------------------------------------------------------------------------

SPEC_NAME = "sequence_transmission"


def spec(length=2):
    """The parsed :class:`~repro.spec.ProtocolSpec` of the variable model
    (``repro/spec/specs/sequence_transmission.kbp``).

    Unlike :func:`kb_context` — which abstracts the channels with a raw
    transition function — this model is declarative: static ``bit_i``
    variables, received copies ``rbit_i``, the counters ``nrcvd``/``sacked``
    and lossy ``*_ok``/``*_fail`` action pairs, so it lowers to both the
    explicit and the symbolic path.
    """
    from repro.spec import load_spec

    if length < 1:
        raise ValueError("the sequence must have at least one bit")
    return load_spec(SPEC_NAME, length=length)


def context_parts(length=2):
    """The context ingredients, shared by the explicit and symbolic paths."""
    return spec(length).context_parts()


def context(length=2):
    """The explicit variable-model context (see :func:`spec`)."""
    return spec(length).variable_context()


def symbolic_model(length=2, **kwargs):
    """The enumeration-free compiled form of the same context."""
    return spec(length).symbolic_model(**kwargs)


def program(length=2):
    """The knowledge-based program of the variable model."""
    return spec(length).program()


def solve(length=2, method="iterate"):
    """Interpret the variable-model program and return the
    :class:`repro.interpretation.iteration.IterationResult`."""
    from repro.interpretation import construct_by_rounds, iterate_interpretation

    ctx = context(length)
    prog = program(length).check_against_context(ctx)
    if method == "iterate":
        return iterate_interpretation(prog, ctx)
    if method == "rounds":
        return construct_by_rounds(prog, ctx)
    raise ValueError(f"unknown method {method!r}")
