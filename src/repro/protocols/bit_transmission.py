"""The bit-transmission problem (the paper's running example).

A sender ``S`` must transmit a bit over a lossy channel to a receiver ``R``,
who must acknowledge the reception over a lossy channel.  The knowledge-based
program is::

    do  !K_S K_R(bit)                      ->  (rbit := sbit, snt := true)  or skip   -- S
    []  K_R(bit) & !K_R K_S K_R(bit)       ->  ack := true                  or skip   -- R
    od

where ``K_R(bit)`` abbreviates ``K_R sbit | K_R !sbit`` ("the receiver knows
the value of the bit").  Losing a message is modelled by the ``*_fail``
variants of the actions, which are enabled by the same guards but have no
effect.

The protocol is specified declaratively in ``repro/spec/specs/
bit_transmission.kbp``; this module is a thin wrapper that loads the spec
and re-exports the derived artefacts, plus the formulas of the properties
checked in EXPERIMENTS.md:

* ``EF K_R(bit)`` and ``EF K_S K_R(bit)`` hold initially;
* ``EF K_R K_S K_R(bit)`` does *not* hold (the receiver can never find out
  that its acknowledgement arrived);
* the implementation provides epistemic witnesses but is not synchronous.
"""

from repro.logic.formula import Knows, Not, Or, Prop
from repro.spec import load_spec

SENDER = "S"
RECEIVER = "R"

#: Proposition names used by the model.
SBIT = "sbit"
RBIT = "rbit"
SNT = "snt"
ACK = "ack"

SPEC_NAME = "bit_transmission"


def spec():
    """The parsed :class:`~repro.spec.ProtocolSpec` of the protocol."""
    return load_spec(SPEC_NAME)


def receiver_knows_bit():
    """The abbreviation ``K_R(bit)``: the receiver knows the bit's value."""
    return Or((Knows(RECEIVER, Prop(SBIT)), Knows(RECEIVER, Not(Prop(SBIT)))))


def sender_knows_receiver_knows():
    """``K_S K_R(bit)``."""
    return Knows(SENDER, receiver_knows_bit())


def receiver_knows_sender_knows():
    """``K_R K_S K_R(bit)``."""
    return Knows(RECEIVER, sender_knows_receiver_knows())


def context_parts():
    """The context ingredients, shared by the explicit and symbolic paths."""
    return spec().context_parts()


def context():
    """Build the bit-transmission context.

    Variables: ``sbit`` (the bit to transmit), ``rbit`` (the transmitted
    value), ``snt`` (whether ``rbit`` is valid), ``ack``.  The sender
    observes ``sbit`` and ``ack``; the receiver observes ``rbit`` and
    ``snt``.  Initially ``rbit``, ``snt`` and ``ack`` are false and ``sbit``
    is arbitrary (two initial states).
    """
    return spec().variable_context()


def symbolic_model(**kwargs):
    """The enumeration-free compiled form of the same context."""
    return spec().symbolic_model(**kwargs)


def program():
    """The knowledge-based program of the bit-transmission problem."""
    return spec().program()


def expected_reachable_labels():
    """The labellings of the six reachable states of the unique
    implementation (the paper's ``z0, z1, z3, z4, z5, z7``); the two states
    with ``ack`` but no successful transmission are unreachable."""
    return [
        frozenset(),
        frozenset({SNT}),
        frozenset({SNT, ACK}),
        frozenset({SBIT}),
        frozenset({SBIT, RBIT, SNT}),
        frozenset({SBIT, RBIT, SNT, ACK}),
    ]


def property_formulas():
    """The CTLK properties checked for the implementation (name -> (formula,
    expected validity))."""
    from repro.temporal import EF

    return {
        "eventually_receiver_knows": (EF(receiver_knows_bit()), True),
        "eventually_sender_knows_receiver_knows": (EF(sender_knows_receiver_knows()), True),
        "never_receiver_knows_sender_knows": (EF(receiver_knows_sender_knows()), False),
    }


def solve(method="iterate"):
    """Interpret the program and return the resulting
    :class:`repro.interpretation.iteration.IterationResult`.

    ``method`` is ``"iterate"`` (default) or ``"rounds"`` (the
    depth-stratified construction).
    """
    from repro.interpretation import construct_by_rounds, iterate_interpretation

    ctx = context()
    prog = program().check_against_context(ctx)
    if method == "iterate":
        return iterate_interpretation(prog, ctx)
    if method == "rounds":
        return construct_by_rounds(prog, ctx)
    raise ValueError(f"unknown method {method!r}")
