"""The bit-transmission problem (the paper's running example).

A sender ``S`` must transmit a bit over a lossy channel to a receiver ``R``,
who must acknowledge the reception over a lossy channel.  The knowledge-based
program is::

    do  !K_S K_R(bit)                      ->  (rbit := sbit, snt := true)  or skip   -- S
    []  K_R(bit) & !K_R K_S K_R(bit)       ->  ack := true                  or skip   -- R
    od

where ``K_R(bit)`` abbreviates ``K_R sbit | K_R !sbit`` ("the receiver knows
the value of the bit").  Losing a message is modelled by the ``*_fail``
variants of the actions, which are enabled by the same guards but have no
effect.

The module provides the context, the program, the standard protocol that the
paper identifies as the (unique) implementation, and the formulas of the
properties checked in EXPERIMENTS.md:

* ``EF K_R(bit)`` and ``EF K_S K_R(bit)`` hold initially;
* ``EF K_R K_S K_R(bit)`` does *not* hold (the receiver can never find out
  that its acknowledgement arrived);
* the implementation provides epistemic witnesses but is not synchronous.
"""

from repro.logic.formula import Knows, Not, Or, Prop
from repro.modeling import Assignment, StateSpace, boolean, var
from repro.programs import AgentProgram, Clause, KnowledgeBasedProgram
from repro.systems import variable_context

SENDER = "S"
RECEIVER = "R"

#: Proposition names used by the model.
SBIT = "sbit"
RBIT = "rbit"
SNT = "snt"
ACK = "ack"


def receiver_knows_bit():
    """The abbreviation ``K_R(bit)``: the receiver knows the bit's value."""
    return Or((Knows(RECEIVER, Prop(SBIT)), Knows(RECEIVER, Not(Prop(SBIT)))))


def sender_knows_receiver_knows():
    """``K_S K_R(bit)``."""
    return Knows(SENDER, receiver_knows_bit())


def receiver_knows_sender_knows():
    """``K_R K_S K_R(bit)``."""
    return Knows(RECEIVER, sender_knows_receiver_knows())


def context_parts():
    """The context ingredients, shared by the explicit and symbolic paths."""
    sbit = boolean(SBIT)
    rbit = boolean(RBIT)
    snt = boolean(SNT)
    ack = boolean(ACK)
    space = StateSpace([sbit, rbit, snt, ack])
    return dict(
        name="bit-transmission",
        state_space=space,
        observables={SENDER: [SBIT, ACK], RECEIVER: [RBIT, SNT]},
        actions={
            SENDER: {
                "send_ok": Assignment({RBIT: var(sbit), SNT: True}),
                "send_fail": Assignment({}),
            },
            RECEIVER: {
                "ack_ok": Assignment({ACK: True}),
                "ack_fail": Assignment({}),
            },
        },
        initial=(~var(rbit)) & (~var(snt)) & (~var(ack)),
    )


def context():
    """Build the bit-transmission context.

    Variables: ``sbit`` (the bit to transmit), ``rbit`` (the transmitted
    value), ``snt`` (whether ``rbit`` is valid), ``ack``.  The sender
    observes ``sbit`` and ``ack``; the receiver observes ``rbit`` and
    ``snt``.  Initially ``rbit``, ``snt`` and ``ack`` are false and ``sbit``
    is arbitrary (two initial states).
    """
    return variable_context(**context_parts())


def symbolic_model():
    """The enumeration-free compiled form of the same context."""
    from repro.symbolic.model import SymbolicContextModel

    return SymbolicContextModel(**context_parts())


def program():
    """The knowledge-based program of the bit-transmission problem."""
    sender_guard = Not(sender_knows_receiver_knows())
    receiver_guard = receiver_knows_bit() & Not(receiver_knows_sender_knows())
    sender_program = AgentProgram(
        SENDER,
        [Clause(sender_guard, "send_ok"), Clause(sender_guard, "send_fail")],
    )
    receiver_program = AgentProgram(
        RECEIVER,
        [Clause(receiver_guard, "ack_ok"), Clause(receiver_guard, "ack_fail")],
    )
    return KnowledgeBasedProgram([sender_program, receiver_program])


def expected_reachable_labels():
    """The labellings of the six reachable states of the unique
    implementation (the paper's ``z0, z1, z3, z4, z5, z7``); the two states
    with ``ack`` but no successful transmission are unreachable."""
    return [
        frozenset(),
        frozenset({SNT}),
        frozenset({SNT, ACK}),
        frozenset({SBIT}),
        frozenset({SBIT, RBIT, SNT}),
        frozenset({SBIT, RBIT, SNT, ACK}),
    ]


def property_formulas():
    """The CTLK properties checked for the implementation (name -> (formula,
    expected validity))."""
    from repro.temporal import EF

    return {
        "eventually_receiver_knows": (EF(receiver_knows_bit()), True),
        "eventually_sender_knows_receiver_knows": (EF(sender_knows_receiver_knows()), True),
        "never_receiver_knows_sender_knows": (EF(receiver_knows_sender_knows()), False),
    }


def solve(method="iterate"):
    """Interpret the program and return the resulting
    :class:`repro.interpretation.iteration.IterationResult`.

    ``method`` is ``"iterate"`` (default) or ``"rounds"`` (the
    depth-stratified construction).
    """
    from repro.interpretation import construct_by_rounds, iterate_interpretation

    ctx = context()
    prog = program().check_against_context(ctx)
    if method == "iterate":
        return iterate_interpretation(prog, ctx)
    if method == "rounds":
        return construct_by_rounds(prog, ctx)
    raise ValueError(f"unknown method {method!r}")
