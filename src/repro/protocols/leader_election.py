"""Leader election on a synchronous unidirectional ring, knowledge-based.

Node ``i`` carries the static candidate flag ``cand{i}`` and the id
``i + 1``; ``seen{i}`` records the highest candidate id it has heard of
(0 = none), and each round every node forwards the maximum of its record
and its ring predecessor's.  The program is a single declarative clause::

    do  K_i leader_i  ->  led_i := true  []  otherwise  ->  forward  od

where ``leader_i`` abbreviates "``i`` is a candidate and no higher-id node
is".  The context is synchronous (every node observes the round counter),
so the implementation is unique and elects exactly the highest-id
candidate — the comparison protocol *emerges* from the knowledge guard.

The protocol is specified declaratively in
``repro/spec/specs/leader_election.kbp`` (parameters ``n`` and
``max_round``); this module wraps the spec on the zoo's shared
``context_parts()``/``symbolic_model()`` convention.  The ring is a
symbolic workload: the state space is ``4^n (n+1)^(n+1)``-ish (each node
contributes ``cand``, ``led`` and an ``(n+1)``-valued ``seen``), so beyond
``n ~ 5`` only the BDD-backed path is practical — see
:func:`solve_symbolic`.
"""

from repro.logic.formula import Implies, Not, Prop, conj
from repro.spec import load_spec

N_NODES = 4

SPEC_NAME = "leader_election"


def spec(n=N_NODES, max_round=None):
    """The parsed :class:`~repro.spec.ProtocolSpec` of the protocol."""
    if max_round is None:
        return load_spec(SPEC_NAME, n=n)
    return load_spec(SPEC_NAME, n=n, max_round=max_round)


def node(i):
    """The name of ring node ``i``."""
    return f"node{i}"


def leader_formula(i, n=N_NODES):
    """``leader_i``: node ``i`` is a candidate and no higher-id node is."""
    return conj(
        [Prop(f"cand{i}")] + [Not(Prop(f"cand{j}")) for j in range(i + 1, n)]
    )


def correctness_formula(n=N_NODES):
    """Safety of the election: a node announces only if it really is the
    highest-id candidate (``led{i} => leader_i`` for every ``i``)."""
    return conj(
        [Implies(Prop(f"led{i}"), leader_formula(i, n)) for i in range(n)]
    )


def context_parts(n=N_NODES):
    """The context ingredients, shared by the explicit and symbolic paths."""
    return spec(n).context_parts()


def context(n=N_NODES):
    """Build the leader-election context (explicit enumeration — only
    viable for small rings)."""
    return spec(n).variable_context()


def symbolic_model(n=N_NODES, **kwargs):
    """The enumeration-free compiled form of the same context."""
    return spec(n).symbolic_model(**kwargs)


def program(n=N_NODES):
    """The nodes' joint knowledge-based program."""
    return spec(n).program()


def solve(n=N_NODES, method="rounds"):
    """Interpret the program explicitly and return the
    :class:`repro.interpretation.iteration.IterationResult`.  The context
    is synchronous, so the default depth-stratified construction is sound
    and converges in one pass."""
    from repro.interpretation import construct_by_rounds, iterate_interpretation

    ctx = context(n)
    prog = program(n).check_against_context(ctx)
    if method == "rounds":
        return construct_by_rounds(prog, ctx)
    if method == "iterate":
        return iterate_interpretation(prog, ctx)
    raise ValueError(f"unknown method {method!r}")


def solve_symbolic(n=N_NODES, **kwargs):
    """Interpret the program on BDDs — the only practical path at ring
    sizes whose state space defeats enumeration."""
    from repro.interpretation import construct_by_rounds_symbolic

    model = symbolic_model(n, **kwargs)
    return construct_by_rounds_symbolic(program(n), model)


def election_is_correct(system, n=N_NODES):
    """Check election safety on a constructed system (explicit or
    symbolic): every announcement is by the true leader."""
    return system.holds_everywhere(correctness_formula(n))


def elected_leader(system, n=N_NODES):
    """The id of the node that eventually announces, or ``None`` when no
    node is a candidate anywhere (explicit systems only: inspects the
    materialised states)."""
    winners = set()
    for state in system.states:
        for i in range(n):
            if state[f"led{i}"]:
                winners.add(i)
    if not winners:
        return None
    return max(winners)
