"""The muddy-children puzzle as a synchronous knowledge-based program.

``n`` children play together; ``k >= 1`` of them get mud on their foreheads.
Each child sees the others' foreheads but not its own.  Their father
announces "at least one of you is muddy" (modelled by restricting the initial
states) and then repeatedly asks "do you know whether you are muddy?".  All
children answer simultaneously and truthfully, and all answers are heard by
everyone.

The knowledge-based program of child ``i`` is::

    do  K_i muddy_i  or  K_i !muddy_i   ->  said_i := true      -- "yes"
    []  otherwise                       ->  said_i := false     -- "no"
    od

with a round counter advanced by the environment in every step.  The context
is synchronous (every child can read the round off its local state), so the
program has a unique implementation and the depth-stratified construction
computes it.  The whole family is specified declaratively in
``repro/spec/specs/muddy_children.kbp`` (parameters ``n`` and ``max_round``);
this module wraps the spec.  The classical result reproduced in
EXPERIMENTS.md:

* with ``k`` muddy children, every muddy child first *knows* its status at
  round ``k - 1`` and first *answers yes* in round ``k``;
* the clean children answer yes exactly one round later;
* no child answers yes earlier.
"""

from itertools import product as _product

from repro.logic.formula import Knows, Not, Or, Prop
from repro.spec import load_spec

SPEC_NAME = "muddy_children"


def spec(n, max_round=None):
    """The parsed :class:`~repro.spec.ProtocolSpec` for ``n`` children."""
    if n < 1:
        raise ValueError("need at least one child")
    if max_round is None:
        return load_spec(SPEC_NAME, n=n)
    return load_spec(SPEC_NAME, n=n, max_round=max_round)


def child(i):
    """The agent name of child ``i`` (0-based)."""
    return f"child{i}"


def muddy_prop(i):
    """The proposition "child ``i`` is muddy"."""
    return Prop(f"muddy{i}")


def said_prop(i):
    """The proposition "child ``i`` answered *yes* in the previous round"."""
    return Prop(f"said{i}")


def knows_own_status(i):
    """``K_i muddy_i | K_i !muddy_i`` — child ``i`` knows whether it is
    muddy."""
    agent = child(i)
    return Or((Knows(agent, muddy_prop(i)), Knows(agent, Not(muddy_prop(i)))))


def context_parts(n, max_round=None):
    """The ingredients of the muddy-children context, as the keyword
    arguments of :func:`repro.systems.variable_context.variable_context`.

    Shared by :func:`context` (the explicit pipeline) and
    :func:`symbolic_model` (the enumeration-free one), so both construct
    from literally the same specification.
    """
    return spec(n, max_round=max_round).context_parts()


def context(n, max_round=None):
    """Build the muddy-children context for ``n`` children.

    Variables: ``muddy_i`` (static), ``said_i`` (the child's answer in the
    previous round), a saturating ``round`` counter and ``heard`` — the first
    round in which some child answered *yes* (0 while nobody has).  The
    ``heard`` variable is the finite summary of the announcement history that
    gives the children perfect recall of what matters: "nobody answered yes
    before round ``r``".  Child ``i`` observes every ``muddy_j`` with
    ``j != i``, every ``said_j``, the round and ``heard``.  The initial
    states are all muddiness patterns with at least one muddy child (the
    father's announcement), ``said_i = false``, ``round = 0`` and
    ``heard = 0``.
    """
    return spec(n, max_round=max_round).variable_context()


def symbolic_model(n, max_round=None):
    """The enumeration-free compiled form of the same context — a
    :class:`repro.symbolic.model.SymbolicContextModel` built from the spec
    without enumerating a single state, usable at sizes where the explicit
    context cannot even be constructed (``StateSpace.size()`` is
    ``≈ 5·10^14`` at ``n = 20``).

    The spec's ``order`` hint interleaves each child's ``muddy_i`` with its
    ``said_i`` (with the round counters on top): a child's answer is a
    function of its muddiness and the round, so keeping the pair adjacent
    keeps the reachable-set BDD polynomial, whereas the state space's
    declaration order (all ``muddy`` then all ``said``) would force the
    diagram to remember the entire muddiness pattern across the ``said``
    block.
    """
    return spec(n, max_round=max_round).symbolic_model()


def program(n):
    """The joint knowledge-based program of ``n`` children."""
    return spec(n).program()


def initial_state_for_pattern(context_, muddy_pattern):
    """Return the initial state in which exactly the children flagged in
    ``muddy_pattern`` (a sequence of booleans) are muddy.

    ``context_`` may be the explicit context or a :func:`symbolic_model`."""
    spec = getattr(context_, "spec", context_)
    space = spec.state_space
    values = {"round": 0, "heard": 0}
    for i, is_muddy in enumerate(muddy_pattern):
        values[f"muddy{i}"] = bool(is_muddy)
        values[f"said{i}"] = False
    return space.state(values)


def run_from_pattern(system, muddy_pattern):
    """Follow the (deterministic) run of the implementation from the initial
    state with the given muddiness pattern and return the list of states, one
    per round."""
    state = initial_state_for_pattern(system.context, muddy_pattern)
    transition_system = system.transition_system
    states = [state]
    seen = {state}
    while True:
        successors = [target for _, target in transition_system.successors(states[-1])]
        if not successors:
            break
        next_state = successors[0]
        if len(set(successors)) != 1:
            raise AssertionError("the muddy-children implementation should be deterministic")
        if next_state in seen:
            states.append(next_state)
            break
        seen.add(next_state)
        states.append(next_state)
    return states


def announcement_rounds(system, muddy_pattern):
    """Return, for each child, the first round in which it answers *yes*
    (i.e. the first round counter value at which ``said_i`` is true) in the
    run with the given muddiness pattern; ``None`` if it never does within
    the explored horizon."""
    rounds = {}
    for state in run_from_pattern(system, muddy_pattern):
        for i in range(len(muddy_pattern)):
            if i in rounds:
                continue
            if state[f"said{i}"]:
                rounds[i] = state["round"]
    return {i: rounds.get(i) for i in range(len(muddy_pattern))}


def knowledge_rounds(system, muddy_pattern):
    """Return, for each child, the first round at which it *knows* its own
    status in the run with the given muddiness pattern."""
    rounds = {}
    for state in run_from_pattern(system, muddy_pattern):
        for i in range(len(muddy_pattern)):
            if i in rounds:
                continue
            if system.holds(state, knows_own_status(i)):
                rounds[i] = state["round"]
    return {i: rounds.get(i) for i in range(len(muddy_pattern))}


def all_patterns(n, muddy_count=None):
    """Yield muddiness patterns for ``n`` children with at least one muddy
    child, optionally restricted to exactly ``muddy_count`` muddy ones."""
    for bits in _product((False, True), repeat=n):
        count = sum(bits)
        if count == 0:
            continue
        if muddy_count is not None and count != muddy_count:
            continue
        yield bits


def solve(n, method="rounds", max_round=None, symbolic=False):
    """Interpret the ``n``-children program and return the
    :class:`repro.interpretation.iteration.IterationResult` (the context is
    synchronous, so the round-by-round construction is sound and is the
    default).

    With ``symbolic=True`` the round construction runs enumeration-free on
    :func:`symbolic_model` — required beyond ``n ≈ 10``, where the explicit
    pipeline becomes infeasible (and only available for ``method="rounds"``).
    """
    from repro.interpretation import construct_by_rounds, iterate_interpretation

    if symbolic:
        if method != "rounds":
            raise ValueError("the symbolic path supports only the rounds method")
        model = symbolic_model(n, max_round=max_round)
        return construct_by_rounds(program(n).check_against_context(model), model)
    ctx = context(n, max_round=max_round)
    prog = program(n).check_against_context(ctx)
    if method == "rounds":
        return construct_by_rounds(prog, ctx)
    if method == "iterate":
        return iterate_interpretation(prog, ctx)
    raise ValueError(f"unknown method {method!r}")
